// Package sim implements the discrete-event cluster simulator of
// Section IV-A: a cluster whose nodes can be fractionally time-shared among
// VM-hosted tasks, with hard per-node memory constraints, per-node CPU and
// memory capacities (internal/cluster; the paper's homogeneous 1.0 x 1.0
// platform is the default), pause/resume/migration of jobs, a configurable
// rescheduling penalty that the scheduling algorithms are unaware of, and
// the bandwidth/occurrence accounting behind Table II.
//
// The simulator advances job progress in virtual time: a job with yield y
// accumulates y seconds of virtual time per wall-clock second and completes
// when its accumulated virtual time reaches its dedicated execution time.
// A job hit by a preemption or migration is frozen (makes no progress) for
// the rescheduling penalty while already occupying its destination nodes,
// which is the paper's pessimistic pause/resume model of migration.
//
// The engine is indexed for scale. The event calendar is a binary heap
// (internal/eventq) holding arrivals, timers and a single tentative
// completion event that is cancelled and re-armed as yields change. Job
// listings (pending/running/paused) and the jobs-in-system count are
// maintained incrementally on state transitions, never recomputed by
// scanning the trace. Per-node (relative load, free memory) state lives in
// a tournament-tree index (internal/sim/index) kept current by every
// occupy/release, so Controller.MaxCPULoad is an O(1) read and
// feasibility-pruned least-loaded-node queries are O(log n) — each
// reproducing the historical O(nodes) scans bit for bit.
//
// The event loop is a step API: Start seeds the calendar,
// HasPendingEvents/PeekNextEventTime inspect it, ProcessNextEvent advances
// the clock by exactly one event, and Finalize produces the Result. Run is
// precisely a loop over ProcessNextEvent, so callers can single-step a
// simulation, interleave several simulators under one external clock, or
// stop between any two events at no cost to the batch path.
//
// # Streaming
//
// A simulator normally materializes the whole trace up front. With
// Config.Source set (a workload.JobSource), jobs are instead pulled
// lazily, one look-ahead job at a time: an arrival is admitted — validated,
// capacity-checked and handed to the scheduler — only when the clock
// reaches its submission time, and the runtime record of a completed job
// is recycled through a free list once its completion hooks have run.
// Config.JobSink routes each finished job's JobResult to a callback
// instead of accumulating Result.Jobs. With all three in play the live
// set is bounded by jobs concurrently in the system, not by trace length,
// which is what lets a million-job trace run in a few megabytes. Event
// order is identical to the materialized run: arrivals outrank coincident
// queue events exactly as the materialized seeding makes them (lowest
// sequence numbers at equal timestamps), so Results match field for field
// — pinned by the streaming equivalence tests.
package sim

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/eventq"
	"repro/internal/floats"
	"repro/internal/placement"
	"repro/internal/sim/index"
	"repro/internal/workload"
)

// capTol is the tolerance on node capacity sums; exceeding it indicates a
// scheduler bug and panics, because no correct DFRS algorithm may
// oversubscribe memory or allocated CPU.
const capTol = 1e-6

// JobState is the lifecycle state of a job inside the simulator.
type JobState int

const (
	// Pending jobs have been submitted and hold no resources.
	Pending JobState = iota
	// Running jobs hold nodes and progress at their yield (unless frozen).
	Running
	// Paused jobs were preempted and hold no resources.
	Paused
	// Done jobs have completed.
	Done
)

// String returns the lowercase state name.
func (s JobState) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Paused:
		return "paused"
	case Done:
		return "done"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// CapacityChecker is an optional interface a Scheduler may implement to
// veto jobs it can structurally never run. The generic eager check of New
// only rejects jobs no scheduler could place (a per-task demand exceeding
// every node); schedulers with stronger allocation rules — batch baselines
// allocate whole nodes exclusively, so a job eligible on fewer nodes than
// its task count starves forever — report those jobs here and New fails
// eagerly with a descriptive error instead of deadlocking mid-run.
type CapacityChecker interface {
	// CheckJob returns a non-nil error if the scheduler can never finish
	// the job on the given cluster.
	CheckJob(cl *cluster.Cluster, j workload.Job) error
}

// Scheduler is the algorithm under test. The simulator invokes exactly one
// hook per event, after advancing job progress to the event time; the hook
// inspects and mutates cluster state through the Controller.
type Scheduler interface {
	// Name identifies the algorithm in results and reports.
	Name() string
	// Init runs once before the first event (e.g. to arm periodic timers).
	Init(ctl *Controller)
	// OnArrival runs when job jid is submitted.
	OnArrival(ctl *Controller, jid int)
	// OnCompletion runs after job jid has completed and released its nodes.
	OnCompletion(ctl *Controller, jid int)
	// OnTimer runs when a timer armed with SetTimer fires.
	OnTimer(ctl *Controller, tag int64)
}

// JobInfo is a read-only snapshot of one job's simulation state.
type JobInfo struct {
	JID         int
	Job         workload.Job
	State       JobState
	Nodes       []int   // one node per task while Running, nil otherwise
	Yield       float64 // current yield while Running
	VirtualTime float64 // accumulated virtual seconds
	Remaining   float64 // virtual seconds left until completion
	FrozenUntil float64 // job makes no progress before this instant
	Attempts    int     // scheduler-maintained failed-attempt counter
	LastPause   float64 // time of the most recent pause, -1 if never paused
}

// FlowTime returns now minus the job's submission time.
func (ji JobInfo) FlowTime(now float64) float64 { return now - ji.Job.Submit }

type jobRT struct {
	job         workload.Job
	state       JobState
	nodes       []int
	yield       float64
	virtual     float64
	remaining   float64
	frozenUntil float64
	attempts    int

	costRate      float64 // sum of hosting nodes' cost rates (0 on unpriced clusters)
	start         float64 // first dispatch time (-1 until started)
	finish        float64
	pauses        int
	migrations    int
	lastPauseTime float64 // for same-event pause+resume reclassification
	lastPauseWas  bool
	prevPauseTime float64 // lastPauseTime before the most recent Pause, for undo
	lastNodes     []int
}

// event payloads
type (
	arrivalEv    struct{ jid int }
	completionEv struct{ gen uint64 }
	timerEv      struct{ tag int64 }
)

// JobResult records the outcome of one job.
type JobResult struct {
	Job        workload.Job
	Start      float64 // first dispatch time
	Finish     float64
	Turnaround float64 // Finish - Submit
	Pauses     int
	Migrations int
}

// Utilization returns the fraction of the cluster's CPU capacity that
// delivered useful work over the schedule's makespan, or 0 for an empty
// run. Lower makespans at equal work mean higher utilization — the paper's
// under-subscription discussion (Section II-B2) in one number. On a
// homogeneous cluster TotalCPUCap equals the node count, matching the
// paper's formula.
func (r *Result) Utilization() float64 {
	cap := r.TotalCPUCap
	if cap == 0 {
		cap = float64(r.Nodes)
	}
	if r.Makespan <= 0 || cap == 0 {
		return 0
	}
	return r.DeliveredCPUSeconds / (r.Makespan * cap)
}

// SchedSample is one timing observation of the scheduler: how long one hook
// invocation took with how many jobs in the system (pending+running+paused).
type SchedSample struct {
	JobsInSystem int
	Seconds      float64
}

// Result is the outcome of a full simulation run.
type Result struct {
	Algorithm string
	Trace     string
	Nodes     int
	// TotalCPUCap is the cluster's aggregate CPU capacity in reference-node
	// units (equal to Nodes for a homogeneous cluster).
	TotalCPUCap float64
	Penalty     float64
	Jobs        []JobResult
	Makespan    float64 // completion time of the last job

	PreemptionOps int
	MigrationOps  int
	PreemptionGB  float64 // data saved+restored due to preemptions
	MigrationGB   float64 // data moved due to migrations

	// DeliveredCPUSeconds is the total CPU work delivered across all
	// tasks (integral over time of need x yield, summed over tasks). The
	// paper's Section II-B2 motivates the average-yield heuristic with
	// platform utilization; Utilization() derives it from this.
	DeliveredCPUSeconds float64

	// NodeCostSeconds is the cost-weighted occupancy of the run: the
	// integral over time of the hosting node's cost rate
	// (cluster.NodeSpec.Cost), summed over every task placement — a node
	// hosting three tasks (of one job or of several) accrues its rate
	// three times, so the quantity decomposes per task and per job.
	// Occupancy counts from dispatch to pause or completion, including
	// frozen and yield-0 intervals — a suspended gang row still holds its
	// VM-resident footprint. Always 0 on unpriced clusters.
	NodeCostSeconds float64

	SchedSamples []SchedSample   // empty unless Config.RecordSchedTimes
	Timeline     []TimelineEvent // empty unless Config.RecordTimeline
	Events       int             // number of simulation events processed
}

// Config configures one simulation run.
type Config struct {
	// Trace is the workload. In streaming mode (Source non-nil) only its
	// metadata is used — Name, Nodes, NodeMemGB — and Trace.Jobs is
	// ignored; otherwise its job list is the whole input.
	Trace *workload.Trace
	// Source, when non-nil, switches the run to streaming mode: jobs are
	// pulled lazily, in nondecreasing submission order, as virtual time
	// reaches their submission instant, and each job's runtime record is
	// recycled at completion. Memory is then bounded by jobs-in-system
	// rather than trace length. Per-job admission checks (validation,
	// unschedulability, capacity) run on admission, so a bad job fails the
	// run mid-stream instead of at construction. Completed jobs are
	// forgotten: scheduler hooks and observers must not query a jid after
	// its completion hook returned.
	Source workload.JobSource
	// JobSink, when non-nil, receives each completed job's JobResult as it
	// completes instead of accumulating it in Result.Jobs (which stays
	// empty). Aggregates (Makespan, DeliveredCPUSeconds, ...) are
	// unaffected. Required for bounded-memory million-job runs, where the
	// per-job result array would dominate the heap.
	JobSink func(JobResult)
	// Cluster describes per-node capacities. Nil means the paper's
	// homogeneous platform: Trace.Nodes reference nodes of capacity
	// 1.0 x 1.0. When set, its node count must equal Trace.Nodes.
	Cluster *cluster.Cluster
	// Penalty is the rescheduling penalty in seconds (0 or 300 in the
	// paper's experiments) applied to every resume and migration.
	Penalty float64
	// CheckInvariants enables full state validation after every event
	// (used by tests; expensive).
	CheckInvariants bool
	// RecordSchedTimes measures wall-clock time per scheduler invocation
	// for the Section V timing study.
	RecordSchedTimes bool
	// RecordTimeline captures every per-job scheduling transition so the
	// run can be rendered as a Gantt chart (Result.Timeline,
	// Result.JobSegments).
	RecordTimeline bool
	// MaxSimTime aborts runs whose simulated clock passes this value
	// (safety net against livelock; 0 disables).
	MaxSimTime float64
	// Observer, when non-nil, receives every scheduling transition as it
	// happens (see Observer). Nil costs nothing on the hot path.
	Observer Observer
	// Objective, when non-nil, overrides every scheduler family's node
	// selection rule with the given placement objective (internal/placement).
	// Nil keeps the paper's per-family defaults — greedy's relative-load
	// rule, the batch/gang first-eligible rule and the packing kernels'
	// index bin order — bit-for-bit.
	Objective placement.Objective
}

// UnschedulableError reports a job that can never run on the configured
// cluster: its per-task requirement for the binding resource exceeds the
// capacity of every node, so batch baselines would starve it forever and
// DFRS placements could never succeed. The simulator rejects such traces
// eagerly at construction instead of deadlocking at run time. A job
// demanding a resource dimension the cluster does not declare (e.g. a GPU
// job on a two-resource cluster) is unschedulable with MaxCap 0.
type UnschedulableError struct {
	// JobID is the trace job ID (workload.Job.ID).
	JobID int
	// Resource is the binding resource: "cpu", "memory", or the cluster's
	// name for a further dimension ("gpu", ...).
	Resource string
	// Need is the job's per-task requirement of the binding resource.
	Need float64
	// MaxCap is the largest per-node capacity of that resource in the
	// cluster.
	MaxCap float64
}

// Error implements error, naming the job and the binding resource.
func (e *UnschedulableError) Error() string {
	return fmt.Sprintf("sim: job %d is unschedulable: per-task %s requirement %g exceeds every node (max capacity %g)",
		e.JobID, e.Resource, e.Need, e.MaxCap)
}

// InsufficientCapacityError reports a job whose identical tasks cannot all
// be placed simultaneously even on an empty cluster: summing over nodes
// the number of tasks each can hold (the minimum over the rigid dimensions
// the job demands) falls short of the job's task count. Every scheduler
// places a job's tasks at one instant, so such a job can never run — e.g.
// a 16-task job demanding memory and GPU together when only four nodes
// carry GPUs. The simulator rejects such traces eagerly at construction.
type InsufficientCapacityError struct {
	// JobID is the trace job ID (workload.Job.ID).
	JobID int
	// Tasks is the job's task count.
	Tasks int
	// Slots is the number of simultaneous task placements the empty
	// cluster can hold for this job's demand vector.
	Slots int
}

// Error implements error.
func (e *InsufficientCapacityError) Error() string {
	return fmt.Sprintf("sim: job %d is unschedulable: %d simultaneous tasks but the empty cluster holds at most %d across its rigid resource dimensions",
		e.JobID, e.Tasks, e.Slots)
}

// Simulator executes one scheduling algorithm over one trace.
type Simulator struct {
	cfg   Config
	sched Scheduler
	obs   Observer

	now     float64
	jobs    []*jobRT
	queue   eventq.Queue
	ctl     Controller
	cl      *cluster.Cluster
	hasCost bool      // any node carries a non-zero cost rate
	usedCPU []float64 // sum over tasks of need*yield
	cpuLoad []float64 // sum over tasks of need (the paper's "CPU load")
	// usedRigid[r][node] is the allocated amount of rigid dimension r+1 on
	// node (usedRigid[0] is memory, further rows are GPU etc.). Rigid
	// resources are hard constraints: occupied on Start/Resume/Migrate,
	// released on Pause/completion, never scaled by yield.
	usedRigid [][]float64
	// nodeIdx mirrors per-node (relative CPU load, free memory) in a
	// tournament tree, refreshed whenever a node's occupancy changes, so
	// MaxCPULoad and the greedy least-loaded-feasible-node query need no
	// O(nodes) scans.
	nodeIdx *index.NodeIndex

	completionGen   uint64
	pendingComplete *eventq.Event

	// Incremental job-state indexes: per-event work follows these instead
	// of scanning the full trace. Each list holds jids in ascending order;
	// state transitions maintain them in O(log jobs-in-state).
	running    []int // jobs in state Running
	paused     []int // jobs in state Paused
	visPending []int // Pending jobs whose submission time has been reached
	bySubmit   []int // all jids ordered by (Submit, jid), activation source
	nextAct    int   // next bySubmit entry to activate
	finishBuf  []int // scratch: running snapshot for the completion sweep
	doneBuf    []int // scratch: jids completed by the current sweep

	// Streaming mode (cfg.Source != nil): one-job lookahead into the
	// source, the FIFO of admitted jobs whose arrival hook has not fired
	// yet, the free-list of recycled runtime records, and the admission
	// bookkeeping. The capacity checks of the materialized constructor
	// (maxCap, chk) are kept to re-run them per admitted job.
	src       workload.JobSource
	srcNext   *workload.Job
	srcJob    workload.Job // backing storage for srcNext
	srcDone   bool
	streamErr error
	arrFIFO   []int
	freeRT    []*jobRT
	// freeNodes recycles per-task node-assignment buffers (jobRT.nodes):
	// releaseNodes pushes the slice a job held, occupyNodes pops one. At
	// high jobs-in-system these buffers dominate the live heap, and on a
	// steady-state stream the pool makes node assignments allocation-free.
	freeNodes  [][]int
	lastSubmit float64
	maxCap     []float64
	chk        CapacityChecker

	started       bool
	remainingJobs int
	result        Result
}

// New creates a simulator for the given configuration and algorithm. The
// trace is validated eagerly.
func New(cfg Config, sched Scheduler) (*Simulator, error) {
	if cfg.Trace == nil {
		return nil, fmt.Errorf("sim: nil trace")
	}
	if cfg.Source != nil {
		// Streaming mode: the trace supplies metadata only; jobs are
		// validated one by one as they are admitted.
		if cfg.Trace.Nodes < 1 {
			return nil, fmt.Errorf("sim: trace has no nodes")
		}
	} else if err := cfg.Trace.Validate(); err != nil {
		return nil, err
	}
	if cfg.Penalty < 0 {
		return nil, fmt.Errorf("sim: negative penalty %g", cfg.Penalty)
	}
	s := &Simulator{cfg: cfg, sched: sched, obs: cfg.Observer}
	n := cfg.Trace.Nodes
	s.cl = cfg.Cluster
	if s.cl == nil {
		s.cl = cluster.Homogeneous(n)
	}
	if err := s.cl.Validate(); err != nil {
		return nil, err
	}
	if s.cl.N() != n {
		return nil, fmt.Errorf("sim: cluster has %d nodes but trace %q targets %d", s.cl.N(), cfg.Trace.Name, n)
	}
	// Eager unschedulability check: a job whose per-task requirement in
	// any dimension exceeds every node of the materialised cluster can
	// never be placed, so reject the trace up front instead of starving at
	// run time. A job demanding a dimension the cluster does not declare
	// faces capacity 0 everywhere and is likewise rejected.
	d := s.cl.D()
	s.maxCap = make([]float64, d)
	for node := 0; node < n; node++ {
		for k := 0; k < d; k++ {
			s.maxCap[k] = math.Max(s.maxCap[k], s.cl.Cap(node, k))
		}
	}
	s.chk, _ = sched.(CapacityChecker)
	if cfg.Source != nil {
		s.src = cfg.Source
	} else {
		// Materialized mode runs every admission check up front; the same
		// checks run per job on admission in streaming mode (admit).
		for _, j := range cfg.Trace.Jobs {
			if err := s.checkSchedulable(j); err != nil {
				return nil, err
			}
		}
	}
	s.hasCost = s.cl.Priced()
	s.usedCPU = make([]float64, n)
	s.cpuLoad = make([]float64, n)
	s.usedRigid = make([][]float64, d-1)
	for r := range s.usedRigid {
		s.usedRigid[r] = make([]float64, n)
	}
	s.nodeIdx = index.NewNodeIndex(n, func(node int) float64 {
		return floats.NonNeg(s.cl.MemCap(node) - s.usedRigid[0][node])
	})
	if s.src == nil {
		s.jobs = make([]*jobRT, len(cfg.Trace.Jobs))
		for i, j := range cfg.Trace.Jobs {
			s.jobs[i] = &jobRT{job: j, state: Pending, remaining: j.ExecTime, start: -1, lastPauseTime: -1, prevPauseTime: -1}
		}
		s.remainingJobs = len(s.jobs)
		s.bySubmit = make([]int, len(s.jobs))
		for jid := range s.jobs {
			s.bySubmit[jid] = jid
		}
		sort.Slice(s.bySubmit, func(a, b int) bool {
			ja, jb := s.jobs[s.bySubmit[a]], s.jobs[s.bySubmit[b]]
			if ja.job.Submit != jb.job.Submit {
				return ja.job.Submit < jb.job.Submit
			}
			return s.bySubmit[a] < s.bySubmit[b]
		})
	}
	s.ctl = Controller{sim: s}
	s.result = Result{
		Algorithm:   sched.Name(),
		Trace:       cfg.Trace.Name,
		Nodes:       n,
		TotalCPUCap: s.cl.TotalCPU(),
		Penalty:     cfg.Penalty,
	}
	return s, nil
}

// checkSchedulable rejects a job that can never run on the configured
// cluster. A job whose per-task requirement in any dimension exceeds every
// node can never be placed (a job demanding a dimension the cluster does
// not declare faces capacity 0 everywhere). A job's tasks are placed
// simultaneously, so a job whose identical tasks cannot fit even an empty
// cluster can never run under any scheduler: each node holds min over the
// demanded rigid dimensions of floor(capacity/demand) tasks, and the total
// must reach the task count. On the paper's platform (unit nodes, demands
// in (0,1], tasks <= nodes) neither check fires; they bite on
// partially-equipped clusters (GPU mixes). Scheduler-specific admission
// (see CapacityChecker) runs last.
func (s *Simulator) checkSchedulable(j workload.Job) error {
	d := s.cl.D()
	dims := d
	if j.Dims() > dims {
		dims = j.Dims()
	}
	for k := 0; k < dims; k++ {
		capK := 0.0
		if k < d {
			capK = s.maxCap[k]
		}
		if !floats.LessEq(j.Demand(k), capK) {
			return &UnschedulableError{
				JobID: j.ID, Resource: resourceName(s.cl, k), Need: j.Demand(k), MaxCap: capK,
			}
		}
	}
	if slots := TaskSlots(s.cl.N(), j.Tasks, cluster.DimMem, d, j.Demand, s.cl.Cap); slots < j.Tasks {
		return &InsufficientCapacityError{JobID: j.ID, Tasks: j.Tasks, Slots: slots}
	}
	if s.chk != nil {
		if err := s.chk.CheckJob(s.cl, j); err != nil {
			return fmt.Errorf("sim: %s cannot run trace %q: %w", s.sched.Name(), s.cfg.Trace.Name, err)
		}
	}
	return nil
}

// peekSource maintains the one-job lookahead into the streaming source.
// After it returns, srcNext is non-nil unless the source is exhausted or
// failed (streamErr).
func (s *Simulator) peekSource() {
	if s.src == nil || s.srcNext != nil || s.srcDone || s.streamErr != nil {
		return
	}
	j, ok, err := s.src.Next()
	if err != nil {
		s.streamErr = fmt.Errorf("sim: streaming trace %q: %w", s.cfg.Trace.Name, err)
		s.srcDone = true
		return
	}
	if !ok {
		s.srcDone = true
		return
	}
	s.srcJob = j
	s.srcNext = &s.srcJob
}

// admitThrough admits every source job submitted at or before t: validated,
// given the next jid, made visible to activation, and queued in the arrival
// FIFO for its OnArrival hook. The clock never passes an unadmitted
// submission (arrivals outrank other events at equal times), so admission
// order is submission order. Failures park in streamErr, surfaced by the
// next ProcessNextEvent.
func (s *Simulator) admitThrough(t float64) {
	for {
		s.peekSource()
		if s.streamErr != nil || s.srcNext == nil || s.srcNext.Submit > t {
			return
		}
		j := *s.srcNext
		s.srcNext = nil
		if err := s.admit(j); err != nil {
			s.streamErr = err
			return
		}
	}
}

// admit runs the per-job admission checks and creates the job's runtime
// record (recycled from the free list when one is available).
func (s *Simulator) admit(j workload.Job) error {
	if err := j.Validate(s.cl.N()); err != nil {
		return err
	}
	if len(s.jobs) > 0 && j.Submit < s.lastSubmit {
		return fmt.Errorf("workload: job %d submitted before its predecessor", j.ID)
	}
	if err := s.checkSchedulable(j); err != nil {
		return err
	}
	s.lastSubmit = j.Submit
	jid := len(s.jobs)
	rt := s.newRT()
	rt.job = j
	rt.remaining = j.ExecTime
	s.jobs = append(s.jobs, rt)
	s.remainingJobs++
	// The source contract (nondecreasing submits) makes admission order the
	// (Submit, jid) order, so both activation and the arrival FIFO extend
	// by plain append.
	s.bySubmit = append(s.bySubmit, jid)
	s.arrFIFO = append(s.arrFIFO, jid)
	return nil
}

// newRT returns a zeroed runtime record, reusing one from the free list
// when completions have recycled any.
func (s *Simulator) newRT() *jobRT {
	var rt *jobRT
	if n := len(s.freeRT); n > 0 {
		rt, s.freeRT = s.freeRT[n-1], s.freeRT[:n-1]
		// Keep the lastNodes buffer across the reset: Pause refills it
		// in place, so one buffer per concurrent job suffices forever.
		last := rt.lastNodes
		*rt = jobRT{}
		rt.lastNodes = last[:0]
	} else {
		rt = &jobRT{}
	}
	rt.state = Pending
	rt.start = -1
	rt.lastPauseTime = -1
	rt.prevPauseTime = -1
	return rt
}

// nextArrival returns the jid and submission time of the earliest admitted
// arrival whose hook has not fired, admitting the lookahead job first when
// the FIFO is empty. ok is false when no arrival is pending.
func (s *Simulator) nextArrival() (jid int, at float64, ok bool) {
	if len(s.arrFIFO) == 0 {
		s.peekSource()
		if s.srcNext == nil {
			return 0, 0, false
		}
		s.admitThrough(s.srcNext.Submit)
		if len(s.arrFIFO) == 0 {
			return 0, 0, false
		}
	}
	jid = s.arrFIFO[0]
	return jid, s.jobs[jid].job.Submit, true
}

// popArrival removes the FIFO head.
func (s *Simulator) popArrival() {
	copy(s.arrFIFO, s.arrFIFO[1:])
	s.arrFIFO = s.arrFIFO[:len(s.arrFIFO)-1]
}

// recycleDone returns the runtime records of the jobs completed by the
// current event to the free list (streaming mode only; the completion
// hooks for all of them have already run). The jid keeps pointing at a nil
// entry, so any later query of a completed job fails loudly instead of
// reading recycled state.
func (s *Simulator) recycleDone(done []int) {
	for _, jid := range done {
		rt := s.jobs[jid]
		s.jobs[jid] = nil
		s.freeRT = append(s.freeRT, rt)
	}
}

// Run executes the simulation to completion and returns the result. A
// simulation fails if the event queue drains while jobs remain (scheduler
// livelock) or the simulated clock exceeds MaxSimTime.
func (s *Simulator) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the context is checked
// between simulation events, so a cancelled or deadline-exceeded context
// stops the run at event granularity with an error wrapping ctx.Err(). A
// context that can never be cancelled adds a single nil comparison per
// event to the hot path.
func (s *Simulator) RunContext(ctx context.Context) (*Result, error) {
	done := ctx.Done()
	s.Start()
	for s.HasPendingJobs() {
		if done != nil {
			select {
			case <-done:
				return nil, fmt.Errorf("sim: %s stopped at t=%.1f with %d jobs unfinished: %w",
					s.sched.Name(), s.now, s.remainingJobs, ctx.Err())
			default:
			}
		}
		if err := s.ProcessNextEvent(); err != nil {
			return nil, err
		}
	}
	return s.Finalize(), nil
}

// Start seeds the event queue with the trace's arrival events and runs the
// scheduler's Init hook. It is idempotent; ProcessNextEvent calls it
// implicitly, so explicit use is only needed by step-driven callers that
// want to inspect state before the first event.
func (s *Simulator) Start() {
	if s.started {
		return
	}
	s.started = true
	for jid := range s.jobs {
		s.queue.Push(s.jobs[jid].job.Submit, arrivalEv{jid: jid})
	}
	s.activateUpTo(s.now)
	s.invoke("init", func() { s.sched.Init(&s.ctl) })
}

// HasPendingJobs reports whether any job has yet to complete — including,
// in streaming mode, jobs the source has not produced yet. Run processes
// events until this turns false.
func (s *Simulator) HasPendingJobs() bool {
	if s.remainingJobs > 0 || s.streamErr != nil {
		return true
	}
	if s.src != nil {
		s.peekSource()
		return s.srcNext != nil || s.streamErr != nil
	}
	return false
}

// HasPendingEvents reports whether the event queue holds at least one
// armed event (in streaming mode, a not-yet-fired arrival counts). Timer
// events may outlive the last job, so this can stay true after
// HasPendingJobs turns false; Run stops at job completion.
func (s *Simulator) HasPendingEvents() bool {
	s.Start()
	if s.queue.Len() > 0 || len(s.arrFIFO) > 0 {
		return true
	}
	if s.src != nil {
		s.peekSource()
		return s.srcNext != nil
	}
	return false
}

// PeekNextEventTime returns the timestamp of the next armed event without
// processing it. ok is false when the queue is empty.
func (s *Simulator) PeekNextEventTime() (t float64, ok bool) {
	s.Start()
	ev := s.queue.Peek()
	if s.src != nil {
		at, okA := 0.0, false
		if len(s.arrFIFO) > 0 {
			at, okA = s.jobs[s.arrFIFO[0]].job.Submit, true
		} else if s.peekSource(); s.srcNext != nil {
			at, okA = s.srcNext.Submit, true
		}
		if okA && (ev == nil || at <= ev.Time) {
			return at, true
		}
	}
	if ev == nil {
		return 0, false
	}
	return ev.Time, true
}

// ProcessNextEvent pops the next event, advances the clock and job progress
// to its timestamp, dispatches the scheduler hook it implies, and re-arms
// the tentative completion event. It returns an error on scheduler livelock
// (empty queue with jobs unfinished), on a time-ordering violation, or when
// the clock passes Config.MaxSimTime. Run is exactly a loop over this.
func (s *Simulator) ProcessNextEvent() error {
	s.Start()
	if s.streamErr != nil {
		return s.streamErr
	}
	if s.src != nil {
		if jid, at, ok := s.nextArrival(); ok {
			// Arrivals outrank coincident completions and timers: the
			// materialized engine pushes every arrival event before the run
			// starts, so at equal timestamps its sequence number is lower
			// than any event armed later.
			if ev := s.queue.Peek(); ev == nil || at <= ev.Time {
				s.popArrival()
				s.advance(at)
				s.result.Events++
				s.record(TlSubmit, jid, 0, 0)
				if s.obs != nil {
					s.obs.JobSubmitted(s.now, jid)
				}
				s.invoke("arrival", func() { s.sched.OnArrival(&s.ctl, jid) })
				return s.finishEvent()
			}
		} else if s.streamErr != nil {
			return s.streamErr
		}
	}
	ev := s.queue.Pop()
	if ev == nil {
		return fmt.Errorf("sim: %s deadlocked at t=%.1f with %d jobs unfinished",
			s.sched.Name(), s.now, s.remainingJobs)
	}
	if ev.Time < s.now-floats.Eps {
		return fmt.Errorf("sim: event time %.6f precedes clock %.6f", ev.Time, s.now)
	}
	s.advance(ev.Time)
	s.result.Events++
	switch p := ev.Payload.(type) {
	case arrivalEv:
		s.record(TlSubmit, p.jid, 0, 0)
		if s.obs != nil {
			s.obs.JobSubmitted(s.now, p.jid)
		}
		s.invoke("arrival", func() { s.sched.OnArrival(&s.ctl, p.jid) })
	case completionEv:
		if p.gen != s.completionGen {
			break // stale tentative completion
		}
		s.pendingComplete = nil
		done := s.finishDue()
		for _, jid := range done {
			s.invoke("completion", func() { s.sched.OnCompletion(&s.ctl, jid) })
		}
		if s.src != nil {
			s.recycleDone(done)
		}
	case timerEv:
		s.invoke("timer", func() { s.sched.OnTimer(&s.ctl, p.tag) })
	}
	return s.finishEvent()
}

// finishEvent is the shared tail of every processed event: re-arm the
// tentative completion, run the optional invariant sweep, and enforce the
// simulated-time ceiling.
func (s *Simulator) finishEvent() error {
	s.rescheduleCompletion()
	if s.cfg.CheckInvariants {
		if err := s.validate(); err != nil {
			return err
		}
	}
	if s.cfg.MaxSimTime > 0 && s.now > s.cfg.MaxSimTime {
		return fmt.Errorf("sim: %s exceeded max simulated time %.0f with %d jobs unfinished",
			s.sched.Name(), s.cfg.MaxSimTime, s.remainingJobs)
	}
	return nil
}

// Finalize sorts the per-job results by job ID and returns the accumulated
// Result. Step-driven callers invoke it once HasPendingJobs turns false;
// calling it earlier returns the partial result accumulated so far.
func (s *Simulator) Finalize() *Result {
	sort.Slice(s.result.Jobs, func(a, b int) bool { return s.result.Jobs[a].Job.ID < s.result.Jobs[b].Job.ID })
	return &s.result
}

func (s *Simulator) invoke(hook string, fn func()) {
	if !s.cfg.RecordSchedTimes && s.obs == nil {
		fn()
		return
	}
	inSystem := s.remainingJobs
	t0 := time.Now()
	fn()
	elapsed := time.Since(t0)
	if s.cfg.RecordSchedTimes {
		s.result.SchedSamples = append(s.result.SchedSamples, SchedSample{
			JobsInSystem: inSystem,
			Seconds:      elapsed.Seconds(),
		})
	}
	if s.obs != nil {
		s.obs.SchedulerInvoked(s.now, hook, inSystem, elapsed)
	}
}

// advance moves the clock to t, accruing virtual time for running jobs and,
// on priced clusters, cost-weighted occupancy for every job holding nodes
// (frozen and yield-0 intervals included — the nodes stay occupied).
func (s *Simulator) advance(t float64) {
	if t <= s.now {
		s.now = math.Max(s.now, t)
		return
	}
	for _, jid := range s.running {
		j := s.jobs[jid]
		if s.hasCost {
			s.result.NodeCostSeconds += j.costRate * (t - s.now)
		}
		if j.yield <= 0 {
			continue
		}
		from := math.Max(s.now, j.frozenUntil)
		if from >= t {
			continue
		}
		progress := (t - from) * j.yield
		j.virtual += progress
		j.remaining = floats.NonNeg(j.remaining - progress)
		s.result.DeliveredCPUSeconds += progress * j.job.CPUNeed * float64(j.job.Tasks)
	}
	s.now = t
	s.activateUpTo(t)
}

// activateUpTo makes every still-pending job submitted at or before t
// visible to the scheduler-facing job listings. bySubmit orders jobs by
// submission time, so the sweep resumes where the previous one stopped and
// each job is considered exactly once across the whole run.
func (s *Simulator) activateUpTo(t float64) {
	if s.src != nil {
		// Streaming: pull every source job submitted by t into the system
		// first, so the activation sweep below sees it. The clock never
		// passes an unadmitted submission (arrivals outrank coincident
		// events), so no job is skipped.
		s.admitThrough(t)
	}
	for s.nextAct < len(s.bySubmit) {
		jid := s.bySubmit[s.nextAct]
		if s.jobs[jid].job.Submit > t {
			return
		}
		if s.jobs[jid].state == Pending {
			s.visPending = insertJid(s.visPending, jid)
		}
		s.nextAct++
	}
}

// finishDue completes every running job whose remaining virtual time has
// reached zero and whose freeze has expired, releasing its resources, and
// returns their jids. The
// returned slice is scratch storage reused by the next sweep; callers must
// not retain it across events.
func (s *Simulator) finishDue() []int {
	// Snapshot the running set: completions mutate s.running in place.
	s.finishBuf = append(s.finishBuf[:0], s.running...)
	s.doneBuf = s.doneBuf[:0]
	for _, jid := range s.finishBuf {
		j := s.jobs[jid]
		if j.state != Running {
			continue
		}
		if j.remaining > floats.Eps {
			// A remainder below the clock's float resolution can never be
			// accrued: the tentative completion time from+remaining/yield
			// rounds to now itself, the completion event fires without
			// advancing the clock, and rescheduling would rearm it at the
			// same instant forever. Such a job is done at clock precision.
			if j.yield <= 0 || math.Max(s.now, j.frozenUntil)+j.remaining/j.yield > s.now {
				continue
			}
		}
		// A frozen job still pays its rescheduling penalty even with no
		// virtual time left (it was preempted or migrated at the brink of
		// completion): it may not finish before frozenUntil.
		if s.now < j.frozenUntil-floats.Eps {
			continue
		}
		s.releaseNodes(j)
		j.state = Done
		j.finish = s.now
		j.yield = 0
		s.running = removeJid(s.running, jid)
		s.remainingJobs--
		jr := JobResult{
			Job:        j.job,
			Start:      j.start,
			Finish:     j.finish,
			Turnaround: j.finish - j.job.Submit,
			Pauses:     j.pauses,
			Migrations: j.migrations,
		}
		if s.cfg.JobSink != nil {
			s.cfg.JobSink(jr)
		} else {
			s.result.Jobs = append(s.result.Jobs, jr)
		}
		if j.finish > s.result.Makespan {
			s.result.Makespan = j.finish
		}
		s.record(TlFinish, jid, 0, 0)
		if s.obs != nil {
			s.obs.JobCompleted(s.now, jid, j.finish-j.job.Submit)
		}
		s.doneBuf = append(s.doneBuf, jid)
	}
	return s.doneBuf
}

// rescheduleCompletion computes the earliest tentative completion across
// running jobs and (re)arms the single completion event.
func (s *Simulator) rescheduleCompletion() {
	earliest := math.Inf(1)
	for _, jid := range s.running {
		j := s.jobs[jid]
		if j.yield <= 0 {
			continue
		}
		from := math.Max(s.now, j.frozenUntil)
		t := from + j.remaining/j.yield
		if t < earliest {
			earliest = t
		}
	}
	if s.pendingComplete != nil {
		s.queue.Cancel(s.pendingComplete)
		s.pendingComplete = nil
	}
	if !math.IsInf(earliest, 1) {
		s.completionGen++
		s.pendingComplete = s.queue.Push(earliest, completionEv{gen: s.completionGen})
	}
}

// TaskSlots returns how many of a job's identical tasks the described
// capacity can hold simultaneously, capped at tasks: each of the n nodes
// holds the minimum over dimensions [loDim, hiDim) of
// floor(capacity/demand), and the per-node counts are summed. Quotients
// are compared in float before the int conversion — a tiny demand can
// push them past the int range, where the conversion is
// implementation-defined; counts at or above tasks are all equivalent.
// Non-positive demands leave a dimension unconstrained. This is the one
// slot-counting rule shared by the simulator's eager capacity check and
// the scheduler-specific admission vetoes (gang rows, greedy forced
// admission).
func TaskSlots(n, tasks, loDim, hiDim int, demand func(k int) float64, capacity func(node, k int) float64) int {
	slots := 0
	for node := 0; node < n && slots < tasks; node++ {
		nodeSlots := tasks
		for k := loDim; k < hiDim; k++ {
			dem := demand(k)
			if dem <= 0 {
				continue
			}
			if q := (capacity(node, k) + floats.Eps) / dem; q < float64(nodeSlots) {
				nodeSlots = int(q)
				if nodeSlots == 0 {
					break
				}
			}
		}
		slots += nodeSlots
	}
	return slots
}

// resourceName names dimension k for error reporting, keeping the
// historical "cpu"/"memory" names for the paper's pair.
func resourceName(cl *cluster.Cluster, k int) string {
	switch k {
	case cluster.DimCPU:
		return "cpu"
	case cluster.DimMem:
		return "memory"
	}
	return cl.DimName(k)
}

// allocNodes returns a length-n buffer for a job's node assignment,
// reusing the most recently recycled one when it is large enough (an
// undersized buffer is simply dropped; task counts are similar across
// jobs, so churn stays marginal).
func (s *Simulator) allocNodes(n int) []int {
	if l := len(s.freeNodes); l > 0 {
		buf := s.freeNodes[l-1]
		s.freeNodes[l-1] = nil
		s.freeNodes = s.freeNodes[:l-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]int, n)
}

func (s *Simulator) occupyNodes(j *jobRT, nodes []int) {
	buf := s.allocNodes(len(nodes))
	copy(buf, nodes)
	j.nodes = buf
	if s.hasCost {
		j.costRate = 0
		for _, node := range nodes {
			j.costRate += s.cl.Nodes[node].Cost
		}
	}
	for _, node := range nodes {
		s.cpuLoad[node] += j.job.CPUNeed
		for r := range s.usedRigid {
			dem := j.job.Demand(r + 1)
			if dem == 0 {
				continue
			}
			s.usedRigid[r][node] += dem
			if s.usedRigid[r][node] > s.cl.Cap(node, r+1)+capTol {
				panic(fmt.Sprintf("sim: %s oversubscribed %s on node %d (%.6f of %.6f) at t=%.1f",
					s.sched.Name(), resourceName(s.cl, r+1), node, s.usedRigid[r][node], s.cl.Cap(node, r+1), s.now))
			}
		}
	}
	// Refresh after all occupancy is accumulated: a node listed once per
	// task then re-derives its leaf from final values, and repeats beyond
	// the first stop at the leaf's unchanged parent.
	for _, node := range nodes {
		s.refreshNode(node)
	}
}

// refreshNode re-derives node's tournament-tree leaf from its live
// occupancy, using exactly the expressions of the historical per-node
// scans (Controller.MaxCPULoad, FreeMem).
func (s *Simulator) refreshNode(node int) {
	s.nodeIdx.Set(node,
		s.cpuLoad[node]/s.cl.CPUCap(node),
		floats.NonNeg(s.cl.MemCap(node)-s.usedRigid[0][node]))
}

func (s *Simulator) releaseNodes(j *jobRT) {
	for _, node := range j.nodes {
		s.cpuLoad[node] -= j.job.CPUNeed
		s.usedCPU[node] -= j.job.CPUNeed * j.yield
		s.cpuLoad[node] = floats.NonNeg(s.cpuLoad[node])
		s.usedCPU[node] = floats.NonNeg(s.usedCPU[node])
		for r := range s.usedRigid {
			if dem := j.job.Demand(r + 1); dem != 0 {
				s.usedRigid[r][node] = floats.NonNeg(s.usedRigid[r][node] - dem)
			}
		}
	}
	for _, node := range j.nodes {
		s.refreshNode(node)
	}
	if cap(j.nodes) > 0 {
		s.freeNodes = append(s.freeNodes, j.nodes[:0])
	}
	j.nodes = nil
	j.costRate = 0
}

// insertJid inserts jid into the ascending list, keeping it sorted. A jid
// already present is left alone, so state transitions need no pre-checks.
func insertJid(list []int, jid int) []int {
	i := sort.SearchInts(list, jid)
	if i < len(list) && list[i] == jid {
		return list
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = jid
	return list
}

// removeJid removes jid from the ascending list, a no-op if absent.
func removeJid(list []int, jid int) []int {
	i := sort.SearchInts(list, jid)
	if i >= len(list) || list[i] != jid {
		return list
	}
	return append(list[:i], list[i+1:]...)
}

// memGB returns the job's total memory footprint in gigabytes, the unit of
// Table II's bandwidth accounting.
func (s *Simulator) memGB(j *jobRT) float64 {
	return float64(j.job.Tasks) * j.job.MemReq * s.cfg.Trace.NodeMemGB
}

// validate is the paranoia check run after every event in tests.
func (s *Simulator) validate() error {
	n := len(s.usedCPU)
	d := s.cl.D()
	usedCPU := make([]float64, n)
	usedRigid := make([]float64, n*(d-1))
	remaining := 0
	for jid, j := range s.jobs {
		if j == nil {
			continue // completed and recycled (streaming mode)
		}
		inList := func(list []int) bool {
			i := sort.SearchInts(list, jid)
			return i < len(list) && list[i] == jid
		}
		if inList(s.running) != (j.state == Running) {
			return fmt.Errorf("sim: job %d in state %v, running-index membership %v", jid, j.state, inList(s.running))
		}
		if inList(s.paused) != (j.state == Paused) {
			return fmt.Errorf("sim: job %d in state %v, paused-index membership %v", jid, j.state, inList(s.paused))
		}
		if want := j.state == Pending && j.job.Submit <= s.now; inList(s.visPending) != want {
			return fmt.Errorf("sim: job %d in state %v submit=%g now=%g, pending-index membership %v",
				jid, j.state, j.job.Submit, s.now, inList(s.visPending))
		}
		if j.state != Done {
			remaining++
		}
		switch j.state {
		case Running:
			if len(j.nodes) != j.job.Tasks {
				return fmt.Errorf("sim: job %d running with %d of %d tasks placed", jid, len(j.nodes), j.job.Tasks)
			}
			if j.yield < -floats.Eps || j.yield > 1+capTol {
				return fmt.Errorf("sim: job %d yield %g outside [0,1]", jid, j.yield)
			}
			for _, node := range j.nodes {
				usedCPU[node] += j.job.CPUNeed * j.yield
				for r := 0; r < d-1; r++ {
					usedRigid[node*(d-1)+r] += j.job.Demand(r + 1)
				}
			}
		case Pending, Paused, Done:
			if j.nodes != nil {
				return fmt.Errorf("sim: job %d in state %v still holds nodes", jid, j.state)
			}
		}
		if j.remaining < -floats.Eps {
			return fmt.Errorf("sim: job %d has negative remaining work %g", jid, j.remaining)
		}
	}
	if remaining != s.remainingJobs {
		return fmt.Errorf("sim: remaining-jobs counter %d disagrees with state scan %d", s.remainingJobs, remaining)
	}
	for node := 0; node < n; node++ {
		if usedCPU[node] > s.cl.CPUCap(node)+capTol {
			return fmt.Errorf("sim: node %d allocated CPU %.6f > capacity %.6f", node, usedCPU[node], s.cl.CPUCap(node))
		}
		for r := 0; r < d-1; r++ {
			if usedRigid[node*(d-1)+r] > s.cl.Cap(node, r+1)+capTol {
				return fmt.Errorf("sim: node %d allocated %s %.6f > capacity %.6f",
					node, resourceName(s.cl, r+1), usedRigid[node*(d-1)+r], s.cl.Cap(node, r+1))
			}
		}
	}
	return nil
}
