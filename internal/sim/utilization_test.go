package sim

import (
	"math"
	"testing"
)

func TestUtilizationSingleJob(t *testing.T) {
	// One 1-task job, need 0.5, exec 100s, yield 1 on a 4-node cluster:
	// delivered = 0.5 * 100 = 50 CPU-seconds; makespan 100 on 4 nodes =
	// 400 capacity -> utilization 12.5%.
	res := mustRun(t, Config{Trace: trace(job(0, 0, 1, 100))}, startImmediately(1))
	if got := res.DeliveredCPUSeconds; math.Abs(got-50) > 1e-6 {
		t.Errorf("delivered = %v, want 50", got)
	}
	if got := res.Utilization(); math.Abs(got-0.125) > 1e-9 {
		t.Errorf("utilization = %v, want 0.125", got)
	}
}

func TestUtilizationIndependentOfYield(t *testing.T) {
	// Halving the yield doubles the makespan but delivers the same work,
	// so utilization halves.
	full := mustRun(t, Config{Trace: trace(job(0, 0, 1, 100))}, startImmediately(1))
	half := mustRun(t, Config{Trace: trace(job(0, 0, 1, 100))}, startImmediately(0.5))
	if math.Abs(full.DeliveredCPUSeconds-half.DeliveredCPUSeconds) > 1e-6 {
		t.Errorf("delivered work changed with yield: %v vs %v",
			full.DeliveredCPUSeconds, half.DeliveredCPUSeconds)
	}
	if math.Abs(half.Utilization()-full.Utilization()/2) > 1e-9 {
		t.Errorf("utilization: full %v, half %v", full.Utilization(), half.Utilization())
	}
}

func TestUtilizationEmptyResult(t *testing.T) {
	r := &Result{}
	if r.Utilization() != 0 {
		t.Errorf("empty utilization = %v", r.Utilization())
	}
}

func TestUtilizationMultiTask(t *testing.T) {
	// 2 tasks x need 0.5 x 100s = 100 CPU-seconds on 4 nodes over 100s.
	res := mustRun(t, Config{Trace: trace(job(0, 0, 2, 100))}, startImmediately(1))
	if got := res.DeliveredCPUSeconds; math.Abs(got-100) > 1e-6 {
		t.Errorf("delivered = %v, want 100", got)
	}
	if got := res.Utilization(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("utilization = %v, want 0.25", got)
	}
}
