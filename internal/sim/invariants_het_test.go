package sim_test

// Heterogeneous-cluster invariant battery, mirroring invariants_test.go:
// every registered algorithm runs over a contended trace on each named
// node-mix profile and on a hand-built fat/thin cluster, with per-event
// validation that no node exceeds its own CPU or memory capacity. The
// model-level checks (no early finishes, no super-dedicated speed, work
// conservation) are shared with the homogeneous battery.

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"

	_ "repro/internal/sched/batch"
	_ "repro/internal/sched/gang"
	_ "repro/internal/sched/greedy"
	_ "repro/internal/sched/mcb"
)

func TestInvariantsOnHeterogeneousProfiles(t *testing.T) {
	tr := invariantTrace(t)
	for _, mix := range cluster.ProfileNames() {
		cl, err := cluster.Profile(mix, tr.Nodes)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range nineAlgorithms {
			s, err := sched.New(alg)
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			simulator, err := sim.New(sim.Config{
				Trace:           tr,
				Cluster:         cl,
				CheckInvariants: true,
				Penalty:         300,
				MaxSimTime:      50 * 365 * 24 * 3600,
			}, s)
			if err != nil {
				t.Fatalf("%s on %s: %v", alg, mix, err)
			}
			res, err := simulator.Run()
			if err != nil {
				t.Fatalf("%s on %s: %v", alg, mix, err)
			}
			checkResultInvariants(t, tr, res, alg+"/"+mix, 300)
		}
	}
}

// TestInvariantsOnFatThinMemoryPressure drives memory-heavy jobs onto a
// hand-built cluster whose thin node cannot host them: every placement must
// respect the thin node's 0.5 capacities while the fat node absorbs the
// heavy tasks. This is the regime where a capacity-unaware scheduler would
// oversubscribe the thin node.
func TestInvariantsOnFatThinMemoryPressure(t *testing.T) {
	jobs := []workload.Job{
		{ID: 0, Submit: 0, Tasks: 1, CPUNeed: 0.9, MemReq: 0.8, ExecTime: 100},
		{ID: 1, Submit: 1, Tasks: 1, CPUNeed: 0.9, MemReq: 0.8, ExecTime: 100},
		{ID: 2, Submit: 2, Tasks: 1, CPUNeed: 0.3, MemReq: 0.4, ExecTime: 50},
		{ID: 3, Submit: 3, Tasks: 2, CPUNeed: 0.5, MemReq: 0.6, ExecTime: 80},
	}
	tr := &workload.Trace{Name: "fat-thin", Nodes: 3, NodeMemGB: 4, Jobs: jobs}
	cl := cluster.New([]cluster.NodeSpec{
		cluster.Spec(2, 2),     // fat
		cluster.Spec(1, 1),     // reference
		cluster.Spec(0.5, 0.5), // thin: only job 2 fits here
	})
	for _, alg := range nineAlgorithms {
		s, err := sched.New(alg)
		if err != nil {
			t.Fatal(err)
		}
		simulator, err := sim.New(sim.Config{Trace: tr, Cluster: cl, CheckInvariants: true,
			Penalty: 300, MaxSimTime: 50 * 365 * 24 * 3600}, s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := simulator.Run()
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		checkResultInvariants(t, tr, res, alg+"/fat-thin", 300)
	}
}

// TestClusterMismatchRejected: a cluster whose node count disagrees with
// the trace is a configuration error, not a panic.
func TestClusterMismatchRejected(t *testing.T) {
	tr := &workload.Trace{Name: "m", Nodes: 2, NodeMemGB: 4, Jobs: []workload.Job{
		{ID: 0, Submit: 0, Tasks: 1, CPUNeed: 0.5, MemReq: 0.5, ExecTime: 10},
	}}
	s, err := sched.New("fcfs")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(sim.Config{Trace: tr, Cluster: cluster.Homogeneous(3)}, s); err == nil {
		t.Error("node-count mismatch accepted")
	}
	if _, err := sim.New(sim.Config{Trace: tr, Cluster: cluster.New(nil)}, s); err == nil {
		t.Error("empty cluster accepted")
	}
}

// TestHeterogeneousUtilization: utilization is measured against the
// cluster's aggregate capacity, not the node count.
func TestHeterogeneousUtilization(t *testing.T) {
	tr := &workload.Trace{Name: "u", Nodes: 2, NodeMemGB: 4, Jobs: []workload.Job{
		{ID: 0, Submit: 0, Tasks: 1, CPUNeed: 1.0, MemReq: 0.5, ExecTime: 100},
	}}
	cl := cluster.New([]cluster.NodeSpec{cluster.Spec(2, 2), cluster.Spec(2, 2)})
	s, err := sched.New("fcfs")
	if err != nil {
		t.Fatal(err)
	}
	simulator, err := sim.New(sim.Config{Trace: tr, Cluster: cl, CheckInvariants: true}, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCPUCap != 4 {
		t.Errorf("TotalCPUCap = %v, want 4", res.TotalCPUCap)
	}
	// 100 CPU-seconds of work over a 100s makespan on 4 units of capacity.
	if got, want := res.Utilization(), 0.25; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("Utilization = %v, want %v", got, want)
	}
}
