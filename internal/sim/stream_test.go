package sim_test

// Streaming-mode equivalence battery: every algorithm of the paper runs
// the same trace twice — materialized (the whole job list handed to the
// simulator up front) and streaming (jobs pulled lazily from a JobSource,
// runtime records recycled at completion) — and the Results must match
// field for field, job for job. The event sequences must also be the same
// length, which pins the arrival-vs-queue tie-breaking to the materialized
// engine's (time, sequence) order.

import (
	"math"
	"testing"

	"repro/internal/lublin"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// streamTrace builds a contentious trace on a small cluster so preempting
// algorithms pause, migrate and reschedule while the stream drains.
func streamTrace(t *testing.T, jobs int) *workload.Trace {
	t.Helper()
	tr, err := lublin.GenerateTrace(rng.New(23), lublin.DefaultParams(16), jobs, "stream-eq")
	if err != nil {
		t.Fatal(err)
	}
	tr.NodeMemGB = 8
	tr, err = tr.ScaleToLoad(1.4)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// metaOnly strips the job list, as streaming callers pass the trace.
func metaOnly(tr *workload.Trace) *workload.Trace {
	return &workload.Trace{Name: tr.Name, Nodes: tr.Nodes, NodeMemGB: tr.NodeMemGB}
}

func sameResults(t *testing.T, alg string, mat, str *sim.Result) {
	t.Helper()
	if mat.Events != str.Events {
		t.Errorf("%s: events %d materialized vs %d streamed", alg, mat.Events, str.Events)
	}
	if mat.Makespan != str.Makespan {
		t.Errorf("%s: makespan %g vs %g", alg, mat.Makespan, str.Makespan)
	}
	if mat.PreemptionOps != str.PreemptionOps || mat.MigrationOps != str.MigrationOps {
		t.Errorf("%s: ops %d/%d vs %d/%d", alg, mat.PreemptionOps, mat.MigrationOps, str.PreemptionOps, str.MigrationOps)
	}
	if mat.PreemptionGB != str.PreemptionGB || mat.MigrationGB != str.MigrationGB {
		t.Errorf("%s: GB %g/%g vs %g/%g", alg, mat.PreemptionGB, mat.MigrationGB, str.PreemptionGB, str.MigrationGB)
	}
	if mat.DeliveredCPUSeconds != str.DeliveredCPUSeconds {
		t.Errorf("%s: delivered %g vs %g", alg, mat.DeliveredCPUSeconds, str.DeliveredCPUSeconds)
	}
	if mat.NodeCostSeconds != str.NodeCostSeconds {
		t.Errorf("%s: node cost %g vs %g", alg, mat.NodeCostSeconds, str.NodeCostSeconds)
	}
	if len(mat.Jobs) != len(str.Jobs) {
		t.Fatalf("%s: %d jobs materialized vs %d streamed", alg, len(mat.Jobs), len(str.Jobs))
	}
	for i := range mat.Jobs {
		a, b := mat.Jobs[i], str.Jobs[i]
		if a.Job.ID != b.Job.ID || a.Start != b.Start || a.Finish != b.Finish ||
			a.Turnaround != b.Turnaround || a.Pauses != b.Pauses || a.Migrations != b.Migrations {
			t.Errorf("%s: job %d differs: %+v vs %+v", alg, a.Job.ID, a, b)
		}
	}
}

func TestStreamingMatchesMaterialized(t *testing.T) {
	tr := streamTrace(t, 60)
	for _, alg := range nineAlgorithms {
		s1, err := sched.New(alg)
		if err != nil {
			t.Fatal(err)
		}
		mat, err := mustSim(t, sim.Config{Trace: tr, CheckInvariants: true}, s1)
		if err != nil {
			t.Fatalf("%s materialized: %v", alg, err)
		}
		s2, err := sched.New(alg)
		if err != nil {
			t.Fatal(err)
		}
		str, err := mustSim(t, sim.Config{
			Trace:           metaOnly(tr),
			Source:          workload.NewSliceSource(tr),
			CheckInvariants: true,
		}, s2)
		if err != nil {
			t.Fatalf("%s streamed: %v", alg, err)
		}
		sameResults(t, alg, mat, str)
	}
}

func mustSim(t *testing.T, cfg sim.Config, s sim.Scheduler) (*sim.Result, error) {
	t.Helper()
	simulator, err := sim.New(cfg, s)
	if err != nil {
		return nil, err
	}
	return simulator.Run()
}

// TestStreamingJobSink pins that a sink receives exactly the JobResults a
// materialized run accumulates, while Result.Jobs stays empty.
func TestStreamingJobSink(t *testing.T) {
	tr := streamTrace(t, 40)
	s1, _ := sched.New("dynmcb8")
	mat, err := mustSim(t, sim.Config{Trace: tr}, s1)
	if err != nil {
		t.Fatal(err)
	}
	var sunk []sim.JobResult
	s2, _ := sched.New("dynmcb8")
	str, err := mustSim(t, sim.Config{
		Trace:   metaOnly(tr),
		Source:  workload.NewSliceSource(tr),
		JobSink: func(jr sim.JobResult) { sunk = append(sunk, jr) },
	}, s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(str.Jobs) != 0 {
		t.Fatalf("Result.Jobs holds %d entries despite sink", len(str.Jobs))
	}
	if len(sunk) != len(mat.Jobs) {
		t.Fatalf("sink saw %d jobs, want %d", len(sunk), len(mat.Jobs))
	}
	// The sink sees completion order; compare as sets keyed by job ID.
	byID := make(map[int]sim.JobResult, len(sunk))
	for _, jr := range sunk {
		byID[jr.Job.ID] = jr
	}
	for _, want := range mat.Jobs {
		got, ok := byID[want.Job.ID]
		if !ok {
			t.Fatalf("job %d missing from sink", want.Job.ID)
		}
		if got.Start != want.Start || got.Finish != want.Finish || got.Pauses != want.Pauses {
			t.Errorf("job %d differs via sink: %+v vs %+v", want.Job.ID, got, want)
		}
	}
	if math.Abs(mat.Makespan-str.Makespan) != 0 {
		t.Errorf("makespan %g vs %g", mat.Makespan, str.Makespan)
	}
}

// errSource yields jobs then fails, pinning mid-stream error surfacing.
type errSource struct {
	jobs []workload.Job
	err  error
	pos  int
}

func (s *errSource) Next() (workload.Job, bool, error) {
	if s.pos < len(s.jobs) {
		j := s.jobs[s.pos]
		s.pos++
		return j, true, nil
	}
	return workload.Job{}, false, s.err
}

func TestStreamingSourceErrorSurfaces(t *testing.T) {
	s, _ := sched.New("fcfs")
	simulator, err := sim.New(sim.Config{
		Trace: &workload.Trace{Name: "bad", Nodes: 4, NodeMemGB: 8},
		Source: &errSource{
			jobs: []workload.Job{{ID: 0, Submit: 1, Tasks: 1, CPUNeed: 0.5, MemReq: 0.25, ExecTime: 10}},
			err:  errBoom,
		},
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simulator.Run(); err == nil {
		t.Fatal("source failure did not fail the run")
	}
}

// TestStreamingRejectsDisorder pins the admission-time ordering guard: a
// source violating the nondecreasing-submit contract fails the run.
func TestStreamingRejectsDisorder(t *testing.T) {
	s, _ := sched.New("fcfs")
	simulator, err := sim.New(sim.Config{
		Trace: &workload.Trace{Name: "disorder", Nodes: 4, NodeMemGB: 8},
		Source: &errSource{jobs: []workload.Job{
			{ID: 0, Submit: 10, Tasks: 1, CPUNeed: 0.5, MemReq: 0.25, ExecTime: 5},
			{ID: 1, Submit: 3, Tasks: 1, CPUNeed: 0.5, MemReq: 0.25, ExecTime: 5},
		}},
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simulator.Run(); err == nil {
		t.Fatal("out-of-order stream accepted")
	}
}

var errBoom = errBoomType{}

type errBoomType struct{}

func (errBoomType) Error() string { return "boom" }
