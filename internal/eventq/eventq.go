// Package eventq implements the event calendar used by the discrete-event
// simulator: a binary min-heap ordered by (time, sequence) with O(log n)
// insertion, extraction and cancellation. The sequence number breaks ties so
// that events scheduled earlier fire first at equal timestamps, which keeps
// simulations fully deterministic.
//
// Cancellation is by handle: Push returns the *Event, and Cancel removes it
// from the heap in O(log n) by its tracked index. The simulator leans on
// this to keep a single tentative completion event armed — every yield
// change cancels and re-pushes it rather than letting stale events
// accumulate.
package eventq

// Event is an entry in the calendar. The payload is opaque to the queue.
type Event struct {
	Time    float64
	Seq     uint64 // insertion order; tie-breaker at equal times
	Payload any

	index int // position in the heap, -1 when removed
}

// Queue is a time-ordered event calendar. The zero value is ready to use.
// It is not safe for concurrent use.
type Queue struct {
	heap []*Event
	seq  uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Empty reports whether no events are pending.
func (q *Queue) Empty() bool { return len(q.heap) == 0 }

// Push schedules payload at the given time and returns a handle that can be
// passed to Cancel.
func (q *Queue) Push(time float64, payload any) *Event {
	q.seq++
	e := &Event{Time: time, Seq: q.seq, Payload: payload, index: len(q.heap)}
	q.heap = append(q.heap, e)
	q.up(e.index)
	return e
}

// Peek returns the earliest pending event without removing it, or nil if the
// queue is empty.
func (q *Queue) Peek() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// Pop removes and returns the earliest pending event, or nil if the queue is
// empty.
func (q *Queue) Pop() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	e := q.heap[0]
	q.removeAt(0)
	return e
}

// Cancel removes a previously pushed event. It reports whether the event was
// still pending; cancelling an already-fired or already-cancelled event is a
// harmless no-op returning false.
func (q *Queue) Cancel(e *Event) bool {
	if e == nil || e.index < 0 || e.index >= len(q.heap) || q.heap[e.index] != e {
		return false
	}
	q.removeAt(e.index)
	return true
}

func (q *Queue) removeAt(i int) {
	last := len(q.heap) - 1
	q.swap(i, last)
	removed := q.heap[last]
	q.heap = q.heap[:last]
	removed.index = -1
	if i < last {
		q.down(i)
		q.up(i)
	}
}

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Seq < b.Seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
