package eventq

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPopOrder(t *testing.T) {
	var q Queue
	q.Push(3, "c")
	q.Push(1, "a")
	q.Push(2, "b")
	var got []string
	for !q.Empty() {
		got = append(got, q.Pop().Payload.(string))
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestTieBreakBySequence(t *testing.T) {
	var q Queue
	q.Push(5, "first")
	q.Push(5, "second")
	q.Push(5, "third")
	if got := q.Pop().Payload.(string); got != "first" {
		t.Errorf("first pop = %q", got)
	}
	if got := q.Pop().Payload.(string); got != "second" {
		t.Errorf("second pop = %q", got)
	}
}

func TestPeek(t *testing.T) {
	var q Queue
	if q.Peek() != nil {
		t.Error("Peek on empty queue should be nil")
	}
	q.Push(2, "x")
	q.Push(1, "y")
	if got := q.Peek().Payload.(string); got != "y" {
		t.Errorf("Peek = %q, want y", got)
	}
	if q.Len() != 2 {
		t.Errorf("Peek consumed an event")
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	a := q.Push(1, "a")
	b := q.Push(2, "b")
	c := q.Push(3, "c")
	if !q.Cancel(b) {
		t.Error("Cancel of pending event returned false")
	}
	if q.Cancel(b) {
		t.Error("double Cancel returned true")
	}
	if q.Cancel(nil) {
		t.Error("Cancel(nil) returned true")
	}
	if got := q.Pop(); got != a {
		t.Errorf("pop after cancel = %v", got.Payload)
	}
	if got := q.Pop(); got != c {
		t.Errorf("pop after cancel = %v", got.Payload)
	}
	if !q.Empty() {
		t.Error("queue should be empty")
	}
	if q.Cancel(a) {
		t.Error("Cancel of popped event returned true")
	}
}

func TestCancelHead(t *testing.T) {
	var q Queue
	a := q.Push(1, "a")
	q.Push(2, "b")
	q.Cancel(a)
	if got := q.Pop().Payload.(string); got != "b" {
		t.Errorf("pop = %q, want b after cancelling head", got)
	}
}

// Property: popping always yields non-decreasing times, with cancellations
// interleaved at random.
func TestHeapOrderProperty(t *testing.T) {
	f := func(seed int64, times []float64) bool {
		r := rand.New(rand.NewSource(seed))
		var q Queue
		var handles []*Event
		for _, tm := range times {
			handles = append(handles, q.Push(tm, nil))
			if len(handles) > 1 && r.Intn(4) == 0 {
				victim := handles[r.Intn(len(handles))]
				q.Cancel(victim)
			}
		}
		prev := math.Inf(-1)
		for !q.Empty() {
			e := q.Pop()
			if e.Time < prev {
				return false
			}
			prev = e.Time
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: without cancellation the queue is a stable sort by (time, seq).
func TestStableSortProperty(t *testing.T) {
	f := func(times []float64) bool {
		var q Queue
		type tagged struct {
			t   float64
			idx int
		}
		var want []tagged
		for i, tm := range times {
			q.Push(tm, i)
			want = append(want, tagged{tm, i})
		}
		sort.SliceStable(want, func(a, b int) bool { return want[a].t < want[b].t })
		for _, w := range want {
			e := q.Pop()
			if e.Time != w.t || e.Payload.(int) != w.idx {
				return false
			}
		}
		return q.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRandomizedAgainstReference drives a long random interleaving of
// Push, Pop, Cancel and Peek against a reference model — a list kept
// sorted by (time, seq) — and demands the queue agree with the model at
// every step, handle for handle. Times are drawn from a small discrete set
// so equal-time ties (broken by insertion sequence) occur constantly.
func TestRandomizedAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var q Queue
	var ref []*Event  // pending events, sorted by (Time, Seq)
	var dead []*Event // popped or cancelled handles; Cancel must reject them

	insert := func(e *Event) {
		at := sort.Search(len(ref), func(i int) bool {
			if ref[i].Time != e.Time {
				return ref[i].Time > e.Time
			}
			return ref[i].Seq > e.Seq
		})
		ref = append(ref, nil)
		copy(ref[at+1:], ref[at:])
		ref[at] = e
	}

	check := func(step int) {
		if q.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, model has %d", step, q.Len(), len(ref))
		}
		head := q.Peek()
		switch {
		case len(ref) == 0 && head != nil:
			t.Fatalf("step %d: Peek = %v on empty model", step, head)
		case len(ref) > 0 && head != ref[0]:
			t.Fatalf("step %d: Peek = %+v, model head %+v", step, head, ref[0])
		}
	}

	for step := 0; step < 5000; step++ {
		switch op := r.Intn(10); {
		case op < 5: // push, times from {0..7} to force ties
			insert(q.Push(float64(r.Intn(8)), step))
		case op < 8: // pop
			got := q.Pop()
			if len(ref) == 0 {
				if got != nil {
					t.Fatalf("step %d: Pop = %+v on empty model", step, got)
				}
				break
			}
			if got != ref[0] {
				t.Fatalf("step %d: Pop = %+v, model head %+v", step, got, ref[0])
			}
			dead = append(dead, got)
			ref = ref[1:]
		case op < 9: // cancel a pending event
			if len(ref) == 0 {
				break
			}
			i := r.Intn(len(ref))
			victim := ref[i]
			if !q.Cancel(victim) {
				t.Fatalf("step %d: Cancel of pending event %+v returned false", step, victim)
			}
			dead = append(dead, victim)
			ref = append(ref[:i], ref[i+1:]...)
		default: // cancel an already-dead handle: must be a no-op
			if len(dead) == 0 {
				break
			}
			if q.Cancel(dead[r.Intn(len(dead))]) {
				t.Fatalf("step %d: Cancel of dead handle returned true", step)
			}
		}
		check(step)
	}

	// Drain: remaining events must come out in exact model order.
	for len(ref) > 0 {
		if got := q.Pop(); got != ref[0] {
			t.Fatalf("drain: Pop = %+v, model head %+v", got, ref[0])
		}
		ref = ref[1:]
	}
	if !q.Empty() {
		t.Fatal("queue not empty after draining the model")
	}
}

func BenchmarkPushPop(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var q Queue
	for i := 0; i < b.N; i++ {
		q.Push(r.Float64(), nil)
		if q.Len() > 1024 {
			q.Pop()
		}
	}
}
