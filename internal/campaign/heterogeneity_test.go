package campaign

// Heterogeneity-axis tests: cell expansion and key compatibility, the
// engine's determinism guarantee on heterogeneous grids, and the
// end-to-end acceptance run — all nine paper algorithms over a
// heterogeneous node mix with per-event capacity invariants enforced.

import (
	"reflect"
	"strings"
	"testing"
)

// paperAlgorithms is the paper's full algorithm set.
var paperAlgorithms = []string{
	"fcfs", "easy",
	"greedy", "greedy-pmtn", "greedy-pmtn-migr",
	"dynmcb8", "dynmcb8-per", "dynmcb8-asap-per", "dynmcb8-stretch-per",
}

func hetGrid() *Grid {
	return &Grid{
		Name:         "het-test",
		Seeds:        []uint64{7},
		Algorithms:   []string{"easy", "greedy-pmtn"},
		Families:     []Family{{Kind: FamilyLublin, Count: 1}},
		Loads:        []float64{0.7},
		Penalties:    []float64{300},
		Nodes:        []int{16},
		NodeMixes:    []string{"uniform", "bimodal", "powerlaw"},
		JobsPerTrace: 30,
	}
}

func TestNodeMixExpansion(t *testing.T) {
	g := hetGrid()
	cells := g.Cells()
	// 1 trace x 1 load x 1 nodes x 3 mixes x 1 penalty x 2 algs = 6.
	if len(cells) != 6 {
		t.Fatalf("expanded to %d cells, want 6", len(cells))
	}
	mixes := map[string]int{}
	for _, c := range cells {
		mixes[c.NodeMix]++
	}
	// "uniform" canonicalizes to the empty mix.
	if mixes[""] != 2 || mixes["bimodal"] != 2 || mixes["powerlaw"] != 2 {
		t.Fatalf("mix distribution = %v", mixes)
	}
	for _, c := range cells {
		key := c.Key()
		if c.NodeMix == "" && strings.Contains(key, "mix=") {
			t.Errorf("homogeneous cell key carries a mix segment: %s", key)
		}
		if c.NodeMix != "" && !strings.Contains(key, "/mix="+c.NodeMix+"/") {
			t.Errorf("heterogeneous cell key lacks its mix segment: %s", key)
		}
	}
}

// TestNodeMixKeyCompatibility pins the checkpoint contract: homogeneous
// cells — with or without an explicit "uniform" mix — produce exactly the
// key format that predates the heterogeneity axis.
func TestNodeMixKeyCompatibility(t *testing.T) {
	c := Cell{Seed: 42, Family: FamilyLublin, TraceIdx: 3, Load: 0.7, Nodes: 128, Jobs: 150,
		Penalty: 300, Algorithm: "easy"}
	want := "seed=42/family=lublin/trace=3/load=0.7/nodes=128/jobs=150/pen=300/alg=easy"
	if got := c.Key(); got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
	c.NodeMix = "bimodal"
	want = "seed=42/family=lublin/trace=3/load=0.7/nodes=128/jobs=150/mix=bimodal/pen=300/alg=easy"
	if got := c.Key(); got != want {
		t.Fatalf("heterogeneous Key() = %q, want %q", got, want)
	}
	if !strings.Contains(c.InstanceKey(), "/mix=bimodal") {
		t.Errorf("InstanceKey misses the mix: %s", c.InstanceKey())
	}
}

func TestNodeMixValidate(t *testing.T) {
	g := hetGrid()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.NodeMixes = []string{"no-such-mix"}
	if err := g.Validate(); err == nil {
		t.Error("unknown node mix accepted")
	}
}

// TestHeterogeneousDeterminism extends the engine's core guarantee to the
// node-mix axis: byte-identical sorted JSONL for any worker count.
func TestHeterogeneousDeterminism(t *testing.T) {
	g := hetGrid()
	serial := runJSONL(t, g, 1)
	parallel := runJSONL(t, g, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("serial run emitted %d records, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("record %d differs:\nserial:   %s\nparallel: %s", i, serial[i], parallel[i])
		}
	}
}

// TestAllAlgorithmsOnHeterogeneousMix is the acceptance run: every paper
// algorithm completes a bimodal-mix campaign cell with per-event capacity
// invariants enforced by the simulator.
func TestAllAlgorithmsOnHeterogeneousMix(t *testing.T) {
	g := &Grid{
		Name:         "het-acceptance",
		Seeds:        []uint64{7},
		Algorithms:   paperAlgorithms,
		Families:     []Family{{Kind: FamilyLublin, Count: 1}},
		Loads:        []float64{0.8},
		Penalties:    []float64{300},
		Nodes:        []int{16},
		NodeMixes:    []string{"bimodal"},
		JobsPerTrace: 30,
		Check:        true, // per-event per-node capacity validation
	}
	recs, err := (&Runner{Workers: 4}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(paperAlgorithms) {
		t.Fatalf("%d records for %d algorithms", len(recs), len(paperAlgorithms))
	}
	for _, rec := range recs {
		if rec.NodeMix != "bimodal" {
			t.Errorf("record %s carries mix %q", rec.Key, rec.NodeMix)
		}
		if rec.Finished != 30 {
			t.Errorf("%s finished %d of 30 jobs", rec.Algorithm, rec.Finished)
		}
	}
}
