package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Sink receives finished cell records as a campaign runs. Implementations
// must be safe for concurrent Write calls (the Runner also serialises its
// own calls, but sinks may be shared across runners).
type Sink interface {
	Write(Record) error
}

// JSONLSink streams records as JSON Lines, the campaign checkpoint format:
// one self-contained record per line, appendable and resumable.
type JSONLSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONLSink wraps w. The caller retains ownership of w (and closes it,
// if applicable) after the campaign completes.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Write emits one record as a single JSON line.
func (s *JSONLSink) Write(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err = s.w.Write(data)
	return err
}

// MultiSink fans every record out to each member sink in order, stopping
// at the first error.
type MultiSink []Sink

// Write implements Sink.
func (m MultiSink) Write(rec Record) error {
	for _, s := range m {
		if err := s.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// MemorySink collects records in memory, mainly for tests and in-process
// aggregation.
type MemorySink struct {
	mu   sync.Mutex
	recs []Record
}

// Write appends the record.
func (s *MemorySink) Write(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, rec)
	return nil
}

// Records returns a copy of the collected records sorted by cell key.
func (s *MemorySink) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]Record(nil), s.recs...)
	SortRecords(out)
	return out
}

// ReadRecords parses a JSONL results stream. Unparseable lines are skipped:
// a campaign interrupted mid-write leaves a truncated final line, and
// resume semantics treat any line that does not decode to a keyed record as
// "cell not finished" so it is simply recomputed.
func ReadRecords(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	var out []Record
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: reading results: %w", err)
	}
	return out, nil
}

// OpenCheckpoint opens (creating if absent) a JSONL checkpoint file for a
// resumed campaign: it reads the cell keys already present — the value for
// Runner.Skip — repairs a torn final line left by an interrupted run so
// appended records start on their own line, and returns the file
// positioned at the end, ready to wrap in a JSONLSink. The caller closes
// the file.
func OpenCheckpoint(path string) (*os.File, map[string]bool, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	skip, err := ReadKeys(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if end > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, end-1); err != nil {
			f.Close()
			return nil, nil, err
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, nil, err
			}
		}
	}
	return f, skip, nil
}

// ReadKeys returns the set of cell keys present in a JSONL results stream,
// the input to Runner.Skip for checkpoint resume.
func ReadKeys(r io.Reader) (map[string]bool, error) {
	recs, err := ReadRecords(r)
	if err != nil {
		return nil, err
	}
	keys := make(map[string]bool, len(recs))
	for _, rec := range recs {
		keys[rec.Key] = true
	}
	return keys, nil
}
