package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	// Register every scheduling algorithm for runner tests.
	_ "repro/internal/sched/batch"
	_ "repro/internal/sched/gang"
	_ "repro/internal/sched/greedy"
	_ "repro/internal/sched/mcb"
)

// testGrid is small enough for CI yet crosses every dimension: two
// algorithms, two families, two loads, two penalties.
func testGrid() *Grid {
	return &Grid{
		Name:         "test",
		Seeds:        []uint64{7},
		Algorithms:   []string{"easy", "greedy-pmtn"},
		Families:     []Family{{Kind: FamilyLublin, Count: 2}, {Kind: FamilyHPC2N, Count: 1, Loads: []float64{Unscaled}}},
		Loads:        []float64{0.3, 0.7},
		Penalties:    []float64{0, 300},
		Nodes:        []int{32},
		JobsPerTrace: 30,
	}
}

func TestGridCells(t *testing.T) {
	g := testGrid()
	cells := g.Cells()
	// lublin: 2 traces x 2 loads x 1 nodes x 2 penalties x 2 algs = 16
	// hpc2n:  1 week   x 1 load  x 1 nodes x 2 penalties x 2 algs = 4
	if len(cells) != 20 {
		t.Fatalf("expanded to %d cells, want 20", len(cells))
	}
	keys := map[string]bool{}
	for _, c := range cells {
		if keys[c.Key()] {
			t.Fatalf("duplicate cell key %s", c.Key())
		}
		keys[c.Key()] = true
		// HPC2N fixes its own platform: the grid's nodes/jobs dimensions
		// must not leak into its cells (and thus its checkpoint keys).
		if c.Family == FamilyHPC2N && (c.Nodes != 0 || c.Jobs != 0) {
			t.Fatalf("hpc2n cell carries grid nodes/jobs: %+v", c)
		}
	}
}

// TestGridCellDedup covers overlapping families: Table I sweeps the same
// lublin traces both scaled and unscaled, and a grid-level load of 0 would
// otherwise expand the unscaled cells twice.
func TestGridCellDedup(t *testing.T) {
	g := &Grid{
		Algorithms: []string{"easy"},
		Families: []Family{
			{Kind: FamilyLublin, Count: 2},
			{Kind: FamilyLublin, Count: 2, Loads: []float64{Unscaled}},
		},
		Loads:        []float64{Unscaled, 0.5},
		JobsPerTrace: 30,
	}
	cells := g.Cells()
	// 2 traces x {0, 0.5} from family one; family two's unscaled cells
	// duplicate family one's load-0 cells and must collapse: 4 total.
	if len(cells) != 4 {
		t.Fatalf("expanded to %d cells, want 4", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Key()] {
			t.Fatalf("duplicate cell key %s", c.Key())
		}
		seen[c.Key()] = true
	}
}

func TestGridDefaults(t *testing.T) {
	g := &Grid{Algorithms: []string{"easy"}, Families: []Family{{Kind: FamilyLublin, Count: 1}}}
	cells := g.Cells()
	if len(cells) != 1 {
		t.Fatalf("%d cells", len(cells))
	}
	c := cells[0]
	if c.Seed != 42 || c.Load != Unscaled || c.Penalty != 0 || c.Nodes != 128 || c.Jobs != 1000 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
}

func TestGridValidate(t *testing.T) {
	cases := []Grid{
		{},                             // no algorithms
		{Algorithms: []string{"easy"}}, // no families
		{Algorithms: []string{"easy"}, Families: []Family{{Kind: "bogus", Count: 1}}},
		{Algorithms: []string{"easy"}, Families: []Family{{Kind: FamilyLublin, Count: 0}}},
		{Algorithms: []string{"easy"}, Families: []Family{{Kind: FamilyLublin, Count: 1}}, Loads: []float64{1.5}},
		{Algorithms: []string{"easy"}, Families: []Family{{Kind: FamilyLublin, Count: 1}}, Penalties: []float64{-1}},
		{Algorithms: []string{"easy"}, Families: []Family{{Kind: FamilyLublin, Count: 1}}, Nodes: []int{0}},
	}
	for i, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid grid %+v", i, g)
		}
	}
	if err := testGrid().Validate(); err != nil {
		t.Errorf("valid grid rejected: %v", err)
	}
}

func TestKeyStability(t *testing.T) {
	c := Cell{Seed: 42, Family: FamilyLublin, TraceIdx: 3, Load: 0.7, Nodes: 128, Jobs: 150, Penalty: 300, Algorithm: "easy"}
	// The key format is a checkpoint contract: changing it silently
	// invalidates every saved campaign, so pin it.
	want := "seed=42/family=lublin/trace=3/load=0.7/nodes=128/jobs=150/pen=300/alg=easy"
	if got := c.Key(); got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
}

func TestUnknownAlgorithmFails(t *testing.T) {
	g := testGrid()
	g.Algorithms = []string{"no-such-algorithm"}
	if _, err := (&Runner{Workers: 2}).Run(g); err == nil {
		t.Fatal("runner accepted unregistered algorithm")
	}
}

// runJSONL executes the grid with the given worker count and returns the
// JSONL output lines sorted lexicographically.
func runJSONL(t *testing.T, g *Grid, workers int) []string {
	t.Helper()
	var buf bytes.Buffer
	r := &Runner{Workers: workers, Sink: NewJSONLSink(&buf)}
	if _, err := r.Run(g); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	sort.Strings(lines)
	return lines
}

// TestDeterminismAcrossWorkerCounts is the engine's core guarantee: the
// same grid produces byte-identical (sorted) JSONL whether cells run
// serially or on eight workers in arbitrary interleavings.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	g := testGrid()
	serial := runJSONL(t, g, 1)
	parallel := runJSONL(t, g, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("serial run emitted %d records, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("record %d differs:\nserial:   %s\nparallel: %s", i, serial[i], parallel[i])
		}
	}
}

// TestResumeSkipsFinishedCells interrupts a campaign (by keeping only a
// prefix of its output) and verifies that a resumed run computes exactly
// the missing cells and that the union matches an uninterrupted run.
func TestResumeSkipsFinishedCells(t *testing.T) {
	g := testGrid()
	full, err := (&Runner{Workers: 4}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate an interrupted campaign: half the records made it to disk,
	// plus a truncated final line from the cut-off write.
	var partial bytes.Buffer
	sink := NewJSONLSink(&partial)
	for _, rec := range full[:len(full)/2] {
		if err := sink.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	partial.WriteString(`{"key":"seed=7/family=lublin/trace`) // torn write
	keys, err := ReadKeys(bytes.NewReader(partial.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(full)/2 {
		t.Fatalf("recovered %d keys, want %d", len(keys), len(full)/2)
	}
	resumed, err := (&Runner{Workers: 4, Skip: keys}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != len(full)-len(full)/2 {
		t.Fatalf("resume ran %d cells, want %d", len(resumed), len(full)-len(full)/2)
	}
	for _, rec := range resumed {
		if keys[rec.Key] {
			t.Fatalf("resume recomputed finished cell %s", rec.Key)
		}
	}
	// Union of checkpointed + resumed records must equal the full run.
	merged := append(append([]Record(nil), full[:len(full)/2]...), resumed...)
	SortRecords(merged)
	if len(merged) != len(full) {
		t.Fatalf("merged %d records, want %d", len(merged), len(full))
	}
	for i := range merged {
		if !reflect.DeepEqual(merged[i], full[i]) {
			t.Fatalf("record %d differs after resume:\nfull:   %+v\nmerged: %+v", i, full[i], merged[i])
		}
	}
}

// TestOpenCheckpoint exercises the on-disk resume protocol: keys recovered,
// torn final line repaired, appended records parseable.
func TestOpenCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	g := testGrid()
	g.Families = g.Families[:1]
	g.Loads = []float64{0.5}
	g.Penalties = []float64{300}
	full, err := (&Runner{Workers: 2}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint one finished record plus a torn trailing write.
	f, skip, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(skip) != 0 {
		t.Fatalf("fresh checkpoint has %d keys", len(skip))
	}
	if err := NewJSONLSink(f).Write(full[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Reopen: the finished key is recovered, the torn line repaired, and a
	// resumed run appended after it stays parseable.
	f, skip, err = OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(skip) != 1 || !skip[full[0].Key] {
		t.Fatalf("recovered keys %v, want just %s", skip, full[0].Key)
	}
	if _, err := (&Runner{Workers: 2, Skip: skip, Sink: NewJSONLSink(f)}).Run(g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecords(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	SortRecords(back)
	if len(back) != len(full) {
		t.Fatalf("checkpoint file holds %d parseable records, want %d", len(back), len(full))
	}
	for i := range back {
		if !reflect.DeepEqual(back[i], full[i]) {
			t.Fatalf("record %d differs after checkpointed resume", i)
		}
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	g := testGrid()
	g.Families = g.Families[:1]
	g.Loads = []float64{0.5}
	g.Penalties = []float64{300}
	var buf bytes.Buffer
	recs, err := (&Runner{Workers: 2, Sink: NewJSONLSink(&buf)}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	SortRecords(back)
	if len(back) != len(recs) {
		t.Fatalf("round-tripped %d records, want %d", len(back), len(recs))
	}
	for i := range back {
		if !reflect.DeepEqual(back[i], recs[i]) {
			t.Fatalf("record %d changed in round trip:\n%+v\n%+v", i, recs[i], back[i])
		}
	}
}

func TestInstanceGrouping(t *testing.T) {
	g := testGrid()
	recs, err := (&Runner{Workers: 4}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	byInstance := map[string]int{}
	for _, rec := range recs {
		byInstance[rec.InstanceKey()]++
	}
	for key, n := range byInstance {
		if n != len(g.Algorithms) {
			t.Errorf("instance %s has %d records, want %d", key, n, len(g.Algorithms))
		}
	}
}

func TestTimingRecords(t *testing.T) {
	g := &Grid{
		Name:         "timing",
		Algorithms:   []string{"dynmcb8"},
		Families:     []Family{{Kind: FamilyLublin, Count: 1}},
		Nodes:        []int{32},
		JobsPerTrace: 30,
		Timing:       true,
	}
	recs, err := (&Runner{Workers: 1}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Timing == nil {
		t.Fatalf("expected one record with timing, got %+v", recs)
	}
	agg := recs[0].Timing
	if agg.Samples == 0 || agg.Sum < 0 || agg.Max < agg.Min {
		t.Fatalf("implausible timing aggregate %+v", agg)
	}
}

func TestProgressCallback(t *testing.T) {
	g := testGrid()
	g.Families = g.Families[:1]
	var calls int
	var lastDone, lastTotal int
	r := &Runner{Workers: 4, Progress: func(done, total int, rec Record) {
		calls++
		lastDone, lastTotal = done, total
		if rec.Key == "" {
			t.Error("progress callback got empty record")
		}
	}}
	recs, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(recs) || lastDone != len(recs) || lastTotal != len(recs) {
		t.Fatalf("progress calls=%d lastDone=%d lastTotal=%d, want all %d", calls, lastDone, lastTotal, len(recs))
	}
}

// TestStreamingRunnerMatchesMaterialized pins that Runner.Stream changes
// only the memory profile: the sorted JSONL output is byte-identical to a
// materialized run of the same grid.
func TestStreamingRunnerMatchesMaterialized(t *testing.T) {
	g := testGrid()
	g.Algorithms = append(g.Algorithms, "dynmcb8")
	plain := runJSONL(t, g, 4)
	var buf bytes.Buffer
	r := &Runner{Workers: 4, Stream: true, Sink: NewJSONLSink(&buf)}
	if _, err := r.Run(g); err != nil {
		t.Fatal(err)
	}
	streamed := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	sort.Strings(streamed)
	if len(plain) != len(streamed) {
		t.Fatalf("materialized run emitted %d records, streamed %d", len(plain), len(streamed))
	}
	for i := range plain {
		if plain[i] != streamed[i] {
			t.Fatalf("record %d differs:\nmaterialized: %s\nstreamed:     %s", i, plain[i], streamed[i])
		}
	}
}
