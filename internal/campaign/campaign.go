// Package campaign is the experiment-orchestration engine behind every
// evaluation in this repository. A campaign is a declarative Grid — the
// cross product of algorithms, workload families, offered-load levels,
// seeds, rescheduling penalties, cluster sizes and node-mix profiles
// (heterogeneous platforms; internal/cluster) — that expands into
// independent Cells, each naming exactly one simulation. A Runner executes
// the cells on a bounded worker pool, materialising each cell's trace from
// a deterministic RNG substream (rng.Source.Split keyed by seed and trace
// index) so that results are bit-identical regardless of worker count or
// scheduling order, and streams each finished cell as one JSONL Record to a
// pluggable Sink.
//
// Because every cell has a canonical Key and every record carries it,
// campaigns checkpoint for free: re-running a grid with the keys of an
// existing output file in Runner.Skip completes only the missing cells.
// The paper's figures and tables (internal/experiments) and the
// dfrs-campaign CLI are thin grid definitions plus record aggregation on
// top of this package.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/federation"
	"repro/internal/placement"
)

// Family kinds understood by the trace materialiser.
const (
	// FamilyLublin is the Lublin–Feitelson synthetic workload model, the
	// paper's 100-trace campaign family.
	FamilyLublin = "lublin"
	// FamilyHPC2N is the HPC2N-like real-world stand-in, split into
	// weekly segments as in Section IV-C. Its cluster size is fixed by
	// the model, so grid Nodes values are ignored for this family.
	FamilyHPC2N = "hpc2n"
)

// Unscaled is the Load value meaning "do not rescale the trace" (the
// paper's unscaled instances of Table I).
const Unscaled = 0.0

// Family selects one workload family and its per-family sweep dimensions.
type Family struct {
	// Kind is FamilyLublin or FamilyHPC2N.
	Kind string `json:"kind"`
	// Count is the number of traces (lublin) or weekly segments (hpc2n).
	Count int `json:"count"`
	// Loads optionally overrides Grid.Loads for this family; an entry of
	// Unscaled (0) keeps the trace at its natural offered load.
	Loads []float64 `json:"loads,omitempty"`
}

// Grid declares a campaign: the full cross product of its dimensions.
// Empty dimensions fall back to single-element defaults (see Cells) so a
// minimal grid needs only Algorithms and one Family.
type Grid struct {
	// Name labels the campaign in logs and reports.
	Name string `json:"name"`
	// Seeds are the root seeds; every seed yields an independent set of
	// base traces. Empty means {42}.
	Seeds []uint64 `json:"seeds"`
	// Algorithms are registered scheduler names (internal/sched).
	Algorithms []string `json:"algorithms"`
	// Families are the workload families to sweep.
	Families []Family `json:"families"`
	// Loads are the offered-load levels applied to families without their
	// own; empty means {Unscaled}.
	Loads []float64 `json:"loads"`
	// Penalties are rescheduling penalties in seconds; empty means {0}.
	Penalties []float64 `json:"penalties"`
	// Nodes are cluster sizes for the lublin family; empty means {128},
	// the paper's platform.
	Nodes []int `json:"nodes"`
	// NodeMixes are node-mix profile names (internal/cluster.Profile)
	// giving each cell's per-node capacities; empty means the homogeneous
	// platform. "uniform" and "" are aliases for homogeneous and expand to
	// the same cell keys as grids predating the heterogeneity axis, so old
	// checkpoints stay resumable. Three-dimensional profiles ("gpu-uniform",
	// "gpu-bimodal") give every cell a GPU capacity axis.
	NodeMixes []string `json:"node_mixes,omitempty"`
	// GPUFrac, when positive, gives that fraction of each cell's jobs a
	// per-task GPU demand (resource dimension 2) drawn from the cell's
	// deterministic RNG substream. Cells with a two-dimensional node mix
	// are extended with a unit GPU capacity per node so the demand is
	// satisfiable. Zero keeps the paper's two-resource workloads and the
	// pre-GPU cell keys.
	GPUFrac float64 `json:"gpu_frac,omitempty"`
	// GPUCorr correlates the GPU demands drawn by GPUFrac with each job's
	// memory requirement (workload.AttachGPUDemandCorrelated): positive
	// values make memory-hungry jobs GPU-hungry, negative values invert
	// the relation, magnitude is the mixing weight. Zero keeps the
	// independent draws — and the pre-correlation cell keys — and is the
	// only valid value when GPUFrac is zero.
	GPUCorr float64 `json:"gpu_corr,omitempty"`
	// Objectives are placement-objective names (internal/placement) to
	// sweep: each cell's schedulers choose among feasible nodes by the
	// cell's objective instead of their family defaults. The empty string
	// is the per-family default (the paper's published rules) and expands
	// to the same cell keys as grids predating the objective axis, so old
	// checkpoints stay resumable. Empty means {""}.
	Objectives []string `json:"objectives,omitempty"`
	// Topologies are federated-cluster topology specs
	// (federation.ParseTopology notation: a bare count like "2", or a
	// member list like "uniform:128+bimodal-priced:64"). Each named
	// topology runs every cell as a federation of those clusters — the
	// cell's trace becomes the global arrival feed, its node count and
	// mix the defaults for count-form specs — crossed with Dispatchers.
	// Empty means single-cluster cells only, with the pre-federation
	// keys.
	Topologies []string `json:"topologies,omitempty"`
	// Dispatchers are federation dispatch-policy names routing arrivals
	// across a topology's clusters; empty means the default policy.
	// Ignored (and rejected) without Topologies.
	Dispatchers []string `json:"dispatchers,omitempty"`
	// JobsPerTrace is the lublin trace length; 0 means 1000 (the paper's).
	JobsPerTrace int `json:"jobs_per_trace"`
	// Check enables per-event simulator invariant validation (slow).
	Check bool `json:"check"`
	// Timing records wall-clock scheduler timing aggregates in each
	// record (Record.Timing). Timing data is inherently nondeterministic;
	// leave it off for campaigns whose output must be reproducible
	// byte-for-byte.
	Timing bool `json:"timing"`
}

// ParseGrid decodes and validates a JSON grid declaration, the submission
// format of the dfrs-serve daemon. Unknown fields are rejected so that a
// typoed dimension name fails the submission instead of silently running
// the default sweep.
func ParseGrid(data []byte) (*Grid, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("campaign: parse grid: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// Remaining counts the cells a resumed run still has to execute: the
// grid's cells whose keys are not in the skip set (typically the keys read
// back from a JSONL checkpoint by OpenCheckpoint or ReadKeys).
func (g *Grid) Remaining(skip map[string]bool) int {
	n := 0
	for _, c := range g.Cells() {
		if !skip[c.Key()] {
			n++
		}
	}
	return n
}

// Cell is one point of an expanded grid: exactly one simulation.
type Cell struct {
	Seed     uint64  `json:"seed"`
	Family   string  `json:"family"`
	TraceIdx int     `json:"trace_idx"`
	Load     float64 `json:"load"` // Unscaled (0) or the target offered load
	Nodes    int     `json:"nodes"`
	Jobs     int     `json:"jobs"`
	// NodeMix is the canonical node-mix profile name; empty means the
	// homogeneous platform.
	NodeMix string `json:"node_mix,omitempty"`
	// GPUFrac is the fraction of the cell's jobs carrying a GPU demand;
	// zero means the paper's two-resource workload.
	GPUFrac float64 `json:"gpu_frac,omitempty"`
	// GPUCorr is the memory correlation of those GPU demands; zero means
	// independent draws.
	GPUCorr float64 `json:"gpu_corr,omitempty"`
	// Objective is the cell's placement-objective name; empty means every
	// scheduler family's default rule (the paper's behaviour).
	Objective string `json:"objective,omitempty"`
	// Topology, when non-empty, runs the cell as a federation of the
	// clusters it describes (federation.ParseTopology notation), with
	// Dispatch naming the routing policy. Empty means the single-cluster
	// simulation.
	Topology string `json:"topology,omitempty"`
	// Dispatch is the federation dispatch policy; empty outside
	// federated cells.
	Dispatch  string  `json:"dispatch,omitempty"`
	Penalty   float64 `json:"penalty"`
	Algorithm string  `json:"algorithm"`
}

// Key returns the cell's canonical identity, the string used for
// checkpoint/resume matching. It is stable across runs and versions of the
// expansion order; homogeneous two-resource cells keep the
// pre-heterogeneity, pre-GPU key format so existing checkpoints remain
// valid.
func (c Cell) Key() string {
	return fmt.Sprintf("seed=%d/family=%s/trace=%d/load=%s/nodes=%d/jobs=%d%s%s%s%s%s/pen=%s/alg=%s",
		c.Seed, c.Family, c.TraceIdx, ftoa(c.Load), c.Nodes, c.Jobs,
		mixKey(c.NodeMix), gpuKey(c.GPUFrac, c.GPUCorr), objKey(c.Objective),
		fedKey(c.Topology), dispKey(c.Dispatch), ftoa(c.Penalty), c.Algorithm)
}

// mixKey renders the node-mix key segment; homogeneous cells contribute
// nothing so their keys match grids predating the heterogeneity axis.
func mixKey(mix string) string {
	if mix == "" {
		return ""
	}
	return "/mix=" + mix
}

// gpuKey renders the GPU-axis key segment; two-resource cells contribute
// nothing so their keys match grids predating the GPU axis, and
// uncorrelated GPU cells keep the pre-correlation format.
func gpuKey(frac, corr float64) string {
	if frac == 0 {
		return ""
	}
	key := "/gpu=" + ftoa(frac)
	if corr != 0 {
		key += "/corr=" + ftoa(corr)
	}
	return key
}

// objKey renders the objective-axis key segment; default-objective cells
// contribute nothing so their keys match grids predating the objective
// axis.
func objKey(obj string) string {
	if obj == "" {
		return ""
	}
	return "/obj=" + obj
}

// fedKey renders the federation-topology key segment; single-cluster
// cells contribute nothing so their keys match grids predating the
// federation axis.
func fedKey(topology string) string {
	if topology == "" {
		return ""
	}
	return "/fed=" + topology
}

// dispKey renders the dispatch-policy key segment, present exactly when
// the cell is federated.
func dispKey(dispatch string) string {
	if dispatch == "" {
		return ""
	}
	return "/disp=" + dispatch
}

// ftoa formats a float with the shortest exact representation so keys are
// canonical.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Validate checks the grid's declarative consistency (family kinds, counts
// and load ranges); algorithm names are resolved at run time against the
// scheduler registry.
func (g *Grid) Validate() error {
	if len(g.Algorithms) == 0 {
		return fmt.Errorf("campaign: grid %q has no algorithms", g.Name)
	}
	if len(g.Families) == 0 {
		return fmt.Errorf("campaign: grid %q has no workload families", g.Name)
	}
	for _, f := range g.Families {
		switch f.Kind {
		case FamilyLublin, FamilyHPC2N:
		default:
			return fmt.Errorf("campaign: unknown workload family %q", f.Kind)
		}
		if f.Count <= 0 {
			return fmt.Errorf("campaign: family %s has count %d", f.Kind, f.Count)
		}
		for _, l := range f.Loads {
			if l < 0 || l > 1 {
				return fmt.Errorf("campaign: family %s load %g outside [0,1]", f.Kind, l)
			}
		}
	}
	for _, l := range g.Loads {
		if l < 0 || l > 1 {
			return fmt.Errorf("campaign: load %g outside [0,1]", l)
		}
	}
	for _, p := range g.Penalties {
		if p < 0 {
			return fmt.Errorf("campaign: negative penalty %g", p)
		}
	}
	for _, n := range g.Nodes {
		if n <= 0 {
			return fmt.Errorf("campaign: non-positive cluster size %d", n)
		}
	}
	for _, mix := range g.NodeMixes {
		if !cluster.ValidProfile(mix) {
			return fmt.Errorf("campaign: unknown node-mix profile %q (known: %v)", mix, cluster.ProfileNames())
		}
	}
	if !(g.GPUFrac >= 0 && g.GPUFrac <= 1) { // negated so NaN is rejected too
		return fmt.Errorf("campaign: gpu job fraction %g outside [0,1]", g.GPUFrac)
	}
	if !(g.GPUCorr >= -1 && g.GPUCorr <= 1) { // negated so NaN is rejected too
		return fmt.Errorf("campaign: gpu memory correlation %g outside [-1,1]", g.GPUCorr)
	}
	if g.GPUCorr != 0 && g.GPUFrac == 0 {
		return fmt.Errorf("campaign: gpu_corr %g requires gpu_frac > 0", g.GPUCorr)
	}
	for _, obj := range g.Objectives {
		if !placement.Known(obj) {
			return fmt.Errorf("campaign: unknown placement objective %q (known: %v)", obj, placement.Names())
		}
	}
	for _, topo := range g.Topologies {
		// Parsed with placeholder defaults: validation is about syntax
		// and mix names; actual node counts come from each cell.
		if _, err := federation.ParseTopology(topo, 1, ""); err != nil {
			return err
		}
	}
	for _, disp := range g.Dispatchers {
		if !federation.Known(disp) {
			return fmt.Errorf("campaign: unknown dispatcher %q (known: %v)", disp, federation.Names())
		}
	}
	if len(g.Dispatchers) > 0 && len(g.Topologies) == 0 {
		return fmt.Errorf("campaign: dispatchers %v without topologies", g.Dispatchers)
	}
	if g.JobsPerTrace < 0 {
		return fmt.Errorf("campaign: negative jobs per trace %d", g.JobsPerTrace)
	}
	return nil
}

// Cells expands the grid into its cells in a deterministic order:
// seed-major, then family, trace index, load, nodes, node mix, objective,
// penalty, algorithm.
func (g *Grid) Cells() []Cell {
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{42}
	}
	defLoads := g.Loads
	if len(defLoads) == 0 {
		defLoads = []float64{Unscaled}
	}
	penalties := g.Penalties
	if len(penalties) == 0 {
		penalties = []float64{0}
	}
	nodes := g.Nodes
	if len(nodes) == 0 {
		nodes = []int{128}
	}
	mixes := make([]string, 0, len(g.NodeMixes))
	for _, mix := range g.NodeMixes {
		mixes = append(mixes, cluster.NormalizeProfile(mix))
	}
	if len(mixes) == 0 {
		mixes = []string{""}
	}
	objectives := g.Objectives
	if len(objectives) == 0 {
		objectives = []string{""}
	}
	// The federation axis: single-cluster cells pair the empty topology
	// with the empty dispatch (keeping pre-federation keys); named
	// topologies cross with the dispatch policies, which are named
	// explicitly in keys (the default stands in when none are given).
	topologies := g.Topologies
	if len(topologies) == 0 {
		topologies = []string{""}
	}
	dispatchers := g.Dispatchers
	if len(dispatchers) == 0 {
		dispatchers = []string{federation.DefaultDispatcher}
	}
	jobs := g.JobsPerTrace
	if jobs == 0 {
		jobs = 1000
	}
	// Overlapping families (e.g. the same lublin traces swept scaled and
	// unscaled) may expand to identical cells; keep the first occurrence so
	// every key names exactly one simulation.
	seen := map[string]bool{}
	var cells []Cell
	for _, seed := range seeds {
		for _, fam := range g.Families {
			loads := fam.Loads
			if len(loads) == 0 {
				loads = defLoads
			}
			// The HPC2N-like model fixes its own cluster size and trace
			// length; collapse both dimensions to 0 so identical
			// simulations never expand under distinct keys.
			famNodes, famJobs := nodes, jobs
			if fam.Kind == FamilyHPC2N {
				famNodes, famJobs = []int{0}, 0
			}
			for idx := 0; idx < fam.Count; idx++ {
				for _, load := range loads {
					for _, n := range famNodes {
						for _, mix := range mixes {
							for _, obj := range objectives {
								for _, topo := range topologies {
									cellDisps := dispatchers
									if topo == "" {
										cellDisps = []string{""}
									}
									for _, disp := range cellDisps {
										for _, pen := range penalties {
											for _, alg := range g.Algorithms {
												c := Cell{
													Seed:      seed,
													Family:    fam.Kind,
													TraceIdx:  idx,
													Load:      load,
													Nodes:     n,
													Jobs:      famJobs,
													NodeMix:   mix,
													GPUFrac:   g.GPUFrac,
													GPUCorr:   g.GPUCorr,
													Objective: obj,
													Topology:  topo,
													Dispatch:  disp,
													Penalty:   pen,
													Algorithm: alg,
												}
												if key := c.Key(); !seen[key] {
													seen[key] = true
													cells = append(cells, c)
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return cells
}

// InstanceKey identifies the instance a cell belongs to: everything except
// the algorithm. Records sharing an instance key ran identical traces on
// identical clusters under the same placement objective, so their
// stretches are comparable — this is the grouping behind degradation
// factors (cells swept across objectives compare algorithms within each
// objective, never a cost-constrained run against an unconstrained one).
func (c Cell) InstanceKey() string {
	return fmt.Sprintf("seed=%d/family=%s/trace=%d/load=%s/nodes=%d/jobs=%d%s%s%s%s%s/pen=%s",
		c.Seed, c.Family, c.TraceIdx, ftoa(c.Load), c.Nodes, c.Jobs,
		mixKey(c.NodeMix), gpuKey(c.GPUFrac, c.GPUCorr), objKey(c.Objective),
		fedKey(c.Topology), dispKey(c.Dispatch), ftoa(c.Penalty))
}

// TimingAgg aggregates the Section V scheduler-timing samples of one run so
// that exact campaign-wide statistics can be merged from per-cell records.
// All wall-clock quantities are in seconds. Timing data is nondeterministic.
type TimingAgg struct {
	Samples   int     `json:"samples"`
	Sum       float64 `json:"sum"`
	SumSq     float64 `json:"sum_sq"`
	Min       float64 `json:"min"`
	Max       float64 `json:"max"`
	LargeN    int     `json:"large_n"` // samples with more than 10 jobs in system
	LargeSum  float64 `json:"large_sum"`
	LargeSqSm float64 `json:"large_sum_sq"`
	LargeMin  float64 `json:"large_min"`
	LargeMax  float64 `json:"large_max"`
	SmallFast int     `json:"small_fast"` // <=10 jobs and <1ms
	MaxJobs   int     `json:"max_jobs"`
}

// Record is the JSONL checkpoint unit: one finished cell plus the metrics
// every report in this repository aggregates from. All fields except Timing
// are deterministic functions of the cell.
type Record struct {
	Key      string  `json:"key"`
	Seed     uint64  `json:"seed"`
	Family   string  `json:"family"`
	Trace    string  `json:"trace"`
	TraceIdx int     `json:"trace_idx"`
	Load     float64 `json:"load"`
	Nodes    int     `json:"nodes"`
	Jobs     int     `json:"jobs"`
	// NodeMix is the cell's node-mix profile; omitted for homogeneous
	// cells so pre-heterogeneity outputs are byte-identical.
	NodeMix string `json:"node_mix,omitempty"`
	// GPUFrac is the cell's GPU-demand fraction; omitted for two-resource
	// cells so pre-GPU outputs are byte-identical.
	GPUFrac float64 `json:"gpu_frac,omitempty"`
	// GPUCorr is the cell's GPU/memory demand correlation; omitted for
	// uncorrelated cells so earlier outputs are byte-identical.
	GPUCorr float64 `json:"gpu_corr,omitempty"`
	// Objective is the cell's placement objective; omitted for
	// default-objective cells so pre-objective outputs are byte-identical.
	Objective string  `json:"objective,omitempty"`
	Penalty   float64 `json:"penalty"`
	Algorithm string  `json:"algorithm"`
	// Topology and Dispatch identify federated cells (the parsed cluster
	// topology and the dispatch policy); omitted for single-cluster cells
	// so pre-federation outputs are byte-identical.
	Topology string `json:"topology,omitempty"`
	Dispatch string `json:"dispatch,omitempty"`

	MaxStretch  float64 `json:"max_stretch"`
	AvgStretch  float64 `json:"avg_stretch"`
	Makespan    float64 `json:"makespan"`
	Utilization float64 `json:"utilization"`
	Finished    int     `json:"finished"`
	Events      int     `json:"events"`
	// Cost is the run's cost-weighted occupancy (hosting node's cost rate
	// x occupied seconds, accrued once per task placement; see
	// sim.Result.NodeCostSeconds). Omitted on unpriced clusters so
	// pre-pricing outputs are byte-identical.
	Cost float64 `json:"cost,omitempty"`
	// Dispatched counts the jobs routed to each member cluster of a
	// federated cell, in cluster order; omitted for single-cluster cells.
	Dispatched []int `json:"dispatched,omitempty"`

	PmtnGBps    float64 `json:"pmtn_gbps"`
	MigGBps     float64 `json:"mig_gbps"`
	PmtnPerHour float64 `json:"pmtn_per_hour"`
	MigPerHour  float64 `json:"mig_per_hour"`
	PmtnPerJob  float64 `json:"pmtn_per_job"`
	MigPerJob   float64 `json:"mig_per_job"`

	Timing *TimingAgg `json:"timing,omitempty"`
}

// InstanceKey groups records that ran the same trace under different
// algorithms; see Cell.InstanceKey.
func (r Record) InstanceKey() string {
	return Cell{Seed: r.Seed, Family: r.Family, TraceIdx: r.TraceIdx, Load: r.Load,
		Nodes: r.Nodes, Jobs: r.Jobs, NodeMix: r.NodeMix, GPUFrac: r.GPUFrac,
		GPUCorr: r.GPUCorr, Objective: r.Objective, Penalty: r.Penalty,
		Topology: r.Topology, Dispatch: r.Dispatch}.InstanceKey()
}

// SortRecords orders records by cell key, the canonical presentation order.
func SortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
}
