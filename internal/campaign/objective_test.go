package campaign

// Objective-axis tests: cell expansion and key compatibility (cells with
// the default objective keep their pre-objective keys so old checkpoints
// resume), grid validation, worker-count determinism of a cost-objective
// campaign on a priced mix with populated cost metrics, and checkpoint
// resume over objective cells.

import (
	"reflect"
	"strings"
	"testing"
)

func objGrid() *Grid {
	return &Grid{
		Name:         "obj-test",
		Seeds:        []uint64{7},
		Algorithms:   []string{"easy", "greedy-pmtn", "dynmcb8-asap-per"},
		Families:     []Family{{Kind: FamilyLublin, Count: 1}},
		Loads:        []float64{0.7},
		Penalties:    []float64{300},
		Nodes:        []int{16},
		NodeMixes:    []string{"bimodal-priced"},
		Objectives:   []string{"", "cost"},
		JobsPerTrace: 25,
	}
}

func TestObjectiveExpansionAndKeys(t *testing.T) {
	g := objGrid()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := g.Cells()
	// 1 trace x 1 load x 1 nodes x 1 mix x 2 objectives x 1 penalty x 3 algs.
	if len(cells) != 6 {
		t.Fatalf("expanded to %d cells, want 6", len(cells))
	}
	for _, c := range cells {
		key := c.Key()
		switch c.Objective {
		case "":
			if strings.Contains(key, "obj=") {
				t.Errorf("default-objective cell key carries an obj segment: %s", key)
			}
		default:
			if !strings.Contains(key, "/obj="+c.Objective+"/") {
				t.Errorf("objective cell key lacks its obj segment: %s", key)
			}
		}
		// The objective is part of the instance grouping: degradation
		// factors never compare across objectives.
		if (c.Objective != "") != strings.Contains(c.InstanceKey(), "obj=") {
			t.Errorf("instance key objective segment mismatch: %s", c.InstanceKey())
		}
	}
	// Key compatibility: a default-objective cell's key is identical to the
	// same cell's key before the objective axis existed.
	plain := Cell{Seed: 1, Family: FamilyLublin, TraceIdx: 0, Load: 0.7, Nodes: 16, Jobs: 25,
		Penalty: 300, Algorithm: "easy"}
	if got, want := plain.Key(), "seed=1/family=lublin/trace=0/load=0.7/nodes=16/jobs=25/pen=300/alg=easy"; got != want {
		t.Fatalf("pre-objective key changed: %s, want %s", got, want)
	}
	// Unknown objectives are rejected at validation.
	bad := objGrid()
	bad.Objectives = []string{"no-such-objective"}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown objective accepted")
	}
}

// TestObjectiveCampaignDeterminismAndCost runs the acceptance scenario:
// a cost-objective campaign on the priced bimodal mix must be
// byte-deterministic for any worker count and every record must carry a
// populated cost metric.
func TestObjectiveCampaignDeterminismAndCost(t *testing.T) {
	g := objGrid()
	run := func(workers int) []Record {
		r := &Runner{Workers: workers}
		recs, err := r.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	serial := run(1)
	parallel := run(4)
	if len(serial) != 6 || len(parallel) != 6 {
		t.Fatalf("record counts %d/%d, want 6", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("record %d differs between worker counts:\n%+v\n%+v", i, serial[i], parallel[i])
		}
		if serial[i].Cost <= 0 {
			t.Fatalf("record %s has no cost on a priced mix", serial[i].Key)
		}
	}
	// The objective field round-trips into records and the default stays
	// empty.
	byObj := map[string]int{}
	for _, rec := range serial {
		byObj[rec.Objective]++
	}
	if byObj[""] != 3 || byObj["cost"] != 3 {
		t.Fatalf("objective distribution %v", byObj)
	}
}

// TestObjectiveCampaignResume: a checkpoint holding a subset of objective
// cells resumes exactly the missing ones.
func TestObjectiveCampaignResume(t *testing.T) {
	g := objGrid()
	all, err := (&Runner{Workers: 2}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	skip := map[string]bool{all[0].Key: true, all[3].Key: true}
	rest, err := (&Runner{Workers: 2, Skip: skip}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != len(all)-2 {
		t.Fatalf("resume ran %d cells, want %d", len(rest), len(all)-2)
	}
	got := map[string]Record{}
	for _, rec := range rest {
		if skip[rec.Key] {
			t.Fatalf("resume re-ran skipped cell %s", rec.Key)
		}
		got[rec.Key] = rec
	}
	for _, rec := range all {
		if skip[rec.Key] {
			continue
		}
		if !reflect.DeepEqual(got[rec.Key], rec) {
			t.Fatalf("resumed cell %s differs from the uninterrupted run", rec.Key)
		}
	}
}
