package campaign

// Federation-axis tests: cell-key compatibility (single-cluster cells keep
// the pre-federation key format), grid validation of topologies and
// dispatchers, byte-determinism of a federated cloud-bursting campaign for
// any worker count, checkpoint resume over federated cells, and the
// GPU-correlation axis riding the same sweep.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// fedGrid is the acceptance scenario: a free on-prem mix plus a priced
// elastic remote, swept across all three dispatch policies.
func fedGrid() *Grid {
	return &Grid{
		Name:         "fed-test",
		Seeds:        []uint64{7},
		Algorithms:   []string{"greedy"},
		Families:     []Family{{Kind: FamilyLublin, Count: 1}},
		Loads:        []float64{1},
		Penalties:    []float64{300},
		Nodes:        []int{16},
		Topologies:   []string{"uniform:16+bimodal-priced:16"},
		Dispatchers:  []string{"roundrobin", "queuedepth", "costaware"},
		JobsPerTrace: 40,
	}
}

// TestFederationKeyCompatibility pins the checkpoint contract: cells
// without the federation axis produce exactly the key format that predates
// it, and federated cells interleave their segments between the objective
// and the penalty.
func TestFederationKeyCompatibility(t *testing.T) {
	c := Cell{Seed: 42, Family: FamilyLublin, TraceIdx: 3, Load: 0.7, Nodes: 128, Jobs: 150,
		Penalty: 300, Algorithm: "easy"}
	want := "seed=42/family=lublin/trace=3/load=0.7/nodes=128/jobs=150/pen=300/alg=easy"
	if got := c.Key(); got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
	c.Topology, c.Dispatch = "uniform:64+bimodal-priced:64", "costaware"
	want = "seed=42/family=lublin/trace=3/load=0.7/nodes=128/jobs=150" +
		"/fed=uniform:64+bimodal-priced:64/disp=costaware/pen=300/alg=easy"
	if got := c.Key(); got != want {
		t.Fatalf("federated Key() = %q, want %q", got, want)
	}
	if !strings.Contains(c.InstanceKey(), "/fed=") || !strings.Contains(c.InstanceKey(), "/disp=") {
		t.Errorf("InstanceKey misses the federation axis: %s", c.InstanceKey())
	}
	// The GPU-correlation segment rides between the fraction and the
	// objective.
	c.Topology, c.Dispatch = "", ""
	c.NodeMix, c.GPUFrac, c.GPUCorr = "gpu-uniform", 0.25, 0.8
	want = "seed=42/family=lublin/trace=3/load=0.7/nodes=128/jobs=150/mix=gpu-uniform/gpu=0.25/corr=0.8/pen=300/alg=easy"
	if got := c.Key(); got != want {
		t.Fatalf("correlated Key() = %q, want %q", got, want)
	}
}

func TestFederationGridValidate(t *testing.T) {
	g := fedGrid()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := fedGrid()
	bad.Topologies = []string{"nosuchmix:4"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown topology mix accepted")
	}
	bad = fedGrid()
	bad.Dispatchers = []string{"nosuchpolicy"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown dispatcher accepted")
	}
	bad = fedGrid()
	bad.Topologies = nil
	if err := bad.Validate(); err == nil {
		t.Error("dispatchers without topologies accepted")
	}
	corr := fedGrid()
	corr.GPUCorr = 0.5
	if err := corr.Validate(); err == nil {
		t.Error("gpu correlation without gpu fraction accepted")
	}
	corr.NodeMixes, corr.GPUFrac = []string{"gpu-uniform"}, 0.3
	if err := corr.Validate(); err != nil {
		t.Errorf("valid correlated grid rejected: %v", err)
	}
	corr.GPUCorr = 1.5
	if err := corr.Validate(); err == nil {
		t.Error("gpu correlation above 1 accepted")
	}
}

// TestFederationCampaignDeterminism is the acceptance run: a 2-cluster
// cloud-bursting campaign across all three dispatch policies emits
// byte-identical sorted JSONL for any worker count, every record carries a
// populated cost (the priced remote) and per-cluster dispatch counts that
// sum to the finished jobs.
func TestFederationCampaignDeterminism(t *testing.T) {
	g := fedGrid()
	serial := runJSONL(t, g, 1)
	parallel := runJSONL(t, g, 4)
	if len(serial) != 3 || len(parallel) != 3 {
		t.Fatalf("record counts %d/%d, want 3", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("record %d differs between worker counts:\nserial:   %s\nparallel: %s",
				i, serial[i], parallel[i])
		}
		var rec Record
		if err := json.Unmarshal([]byte(serial[i]), &rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Topology == "" || rec.Dispatch == "" {
			t.Errorf("record %s lacks federation fields", rec.Key)
		}
		if rec.Cost <= 0 {
			t.Errorf("record %s has no cost despite the priced remote", rec.Key)
		}
		if len(rec.Dispatched) != 2 {
			t.Fatalf("record %s has %d dispatch counts, want 2", rec.Key, len(rec.Dispatched))
		}
		if got := rec.Dispatched[0] + rec.Dispatched[1]; got != rec.Finished {
			t.Errorf("record %s dispatched %d jobs but finished %d", rec.Key, got, rec.Finished)
		}
	}
}

// TestFederationCampaignFedWorkersDeterminism pins FedWorkers as a pure
// execution knob: the same federated grid emits byte-identical sorted
// JSONL whether each cell's member clusters advance serially or on a
// parallel worker pool, alone and combined with a concurrent cell pool.
// FedWorkers is not a grid axis, so keys and records cannot depend on it
// by construction — this guards the engine half of that promise.
func TestFederationCampaignFedWorkersDeterminism(t *testing.T) {
	g := fedGrid()
	run := func(cellWorkers, fedWorkers int) []string {
		t.Helper()
		var buf bytes.Buffer
		r := &Runner{Workers: cellWorkers, FedWorkers: fedWorkers, Sink: NewJSONLSink(&buf)}
		if _, err := r.Run(g); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
		sort.Strings(lines)
		return lines
	}
	base := run(1, 0)
	for _, tc := range []struct{ cell, fed int }{{1, 1}, {1, 4}, {2, 2}, {4, 4}} {
		got := run(tc.cell, tc.fed)
		if len(got) != len(base) {
			t.Fatalf("workers=%d fed-workers=%d emitted %d records, want %d",
				tc.cell, tc.fed, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d fed-workers=%d record %d differs:\nbase: %s\ngot:  %s",
					tc.cell, tc.fed, i, base[i], got[i])
			}
		}
	}
}

// TestFederationCampaignResume: a checkpoint holding a subset of federated
// cells resumes exactly the missing ones with identical records.
func TestFederationCampaignResume(t *testing.T) {
	g := fedGrid()
	all, err := (&Runner{Workers: 2}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("ran %d cells, want 3", len(all))
	}
	skip := map[string]bool{all[1].Key: true}
	rest, err := (&Runner{Workers: 2, Skip: skip}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 {
		t.Fatalf("resume ran %d cells, want 2", len(rest))
	}
	got := map[string]Record{}
	for _, rec := range rest {
		if skip[rec.Key] {
			t.Fatalf("resume re-ran skipped cell %s", rec.Key)
		}
		got[rec.Key] = rec
	}
	for _, rec := range all {
		if skip[rec.Key] {
			continue
		}
		if !reflect.DeepEqual(got[rec.Key], rec) {
			t.Fatalf("resumed cell %s differs from the uninterrupted run", rec.Key)
		}
	}
}

// TestGPUCorrelationChangesTraces: the correlation axis must actually
// perturb results relative to independent draws (same seed, same
// fraction), and stay deterministic across worker counts.
func TestGPUCorrelationChangesTraces(t *testing.T) {
	mk := func(corr float64) *Grid {
		return &Grid{
			Name:         "corr-test",
			Seeds:        []uint64{7},
			Algorithms:   []string{"greedy-pmtn"},
			Families:     []Family{{Kind: FamilyLublin, Count: 1}},
			Loads:        []float64{0.7},
			Penalties:    []float64{300},
			Nodes:        []int{16},
			NodeMixes:    []string{"gpu-uniform"},
			GPUFrac:      0.3,
			GPUCorr:      corr,
			JobsPerTrace: 30,
		}
	}
	indep := runJSONL(t, mk(0), 2)
	corr := runJSONL(t, mk(0.9), 2)
	corrAgain := runJSONL(t, mk(0.9), 1)
	if len(indep) != 1 || len(corr) != 1 {
		t.Fatalf("record counts %d/%d, want 1", len(indep), len(corr))
	}
	if corr[0] != corrAgain[0] {
		t.Fatalf("correlated cell is not worker-count deterministic:\n%s\n%s", corr[0], corrAgain[0])
	}
	if indep[0] == corr[0] {
		t.Fatalf("corr=0.9 produced the identical record to corr=0: %s", corr[0])
	}
	if !strings.Contains(corr[0], "/corr=0.9/") {
		t.Errorf("correlated record key lacks the corr segment: %s", corr[0])
	}
}
