package campaign

// GPU-axis tests: cell-key compatibility (two-resource cells keep the
// pre-GPU key format), grid validation, determinism of the decorated
// traces, and the three-resource end-to-end acceptance run — DFRS and gang
// algorithms over a GPU node mix with per-event capacity invariants
// enforced in every dimension.

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func gpuGrid() *Grid {
	return &Grid{
		Name:         "gpu-test",
		Seeds:        []uint64{7},
		Algorithms:   []string{"greedy-pmtn", "dynmcb8-asap-per"},
		Families:     []Family{{Kind: FamilyLublin, Count: 1}},
		Loads:        []float64{0.7},
		Penalties:    []float64{300},
		Nodes:        []int{16},
		NodeMixes:    []string{"gpu-uniform"},
		GPUFrac:      0.3,
		JobsPerTrace: 30,
	}
}

// TestGPUKeyCompatibility pins the checkpoint contract: cells without the
// GPU axis produce exactly the key format that predates it, and GPU cells
// interleave their segment between the mix and the penalty.
func TestGPUKeyCompatibility(t *testing.T) {
	c := Cell{Seed: 42, Family: FamilyLublin, TraceIdx: 3, Load: 0.7, Nodes: 128, Jobs: 150,
		Penalty: 300, Algorithm: "easy"}
	want := "seed=42/family=lublin/trace=3/load=0.7/nodes=128/jobs=150/pen=300/alg=easy"
	if got := c.Key(); got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
	c.NodeMix, c.GPUFrac = "gpu-bimodal", 0.25
	want = "seed=42/family=lublin/trace=3/load=0.7/nodes=128/jobs=150/mix=gpu-bimodal/gpu=0.25/pen=300/alg=easy"
	if got := c.Key(); got != want {
		t.Fatalf("gpu Key() = %q, want %q", got, want)
	}
	if !strings.Contains(c.InstanceKey(), "/gpu=0.25/") {
		t.Errorf("InstanceKey misses the gpu axis: %s", c.InstanceKey())
	}
}

func TestGPUGridValidate(t *testing.T) {
	g := gpuGrid()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.GPUFrac = 1.5
	if err := g.Validate(); err == nil {
		t.Error("gpu fraction above 1 accepted")
	}
	g.GPUFrac = -0.1
	if err := g.Validate(); err == nil {
		t.Error("negative gpu fraction accepted")
	}
}

// TestGPUDeterminism extends the engine's core guarantee to the GPU axis:
// byte-identical sorted JSONL for any worker count.
func TestGPUDeterminism(t *testing.T) {
	g := gpuGrid()
	serial := runJSONL(t, g, 1)
	parallel := runJSONL(t, g, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("serial run emitted %d records, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("record %d differs:\nserial:   %s\nparallel: %s", i, serial[i], parallel[i])
		}
	}
}

// TestGPUAcceptanceRun is the three-resource end-to-end run: DFRS and gang
// algorithms complete GPU-demanding campaign cells on both GPU node mixes
// — and, via cluster extension, on the homogeneous platform — with
// per-event capacity invariants enforced in every dimension.
func TestGPUAcceptanceRun(t *testing.T) {
	g := &Grid{
		Name:       "gpu-acceptance",
		Seeds:      []uint64{7},
		Algorithms: []string{"greedy", "greedy-pmtn", "greedy-pmtn-migr", "dynmcb8", "dynmcb8-per", "gang"},
		Families:   []Family{{Kind: FamilyLublin, Count: 1}},
		Loads:      []float64{0.8},
		Penalties:  []float64{300},
		Nodes:      []int{16},
		// "" exercises the two-dim mix extended with a unit GPU dimension;
		// gpu-uniform keeps every node GPU-equipped so every decorated job
		// stays feasible (gpu-bimodal's eager reject path is covered by
		// TestGPUBimodalInfeasibleCellRejected).
		NodeMixes:    []string{"", "gpu-uniform"},
		GPUFrac:      0.4,
		JobsPerTrace: 30,
		Check:        true, // per-event per-node per-dimension validation
	}
	recs, err := (&Runner{Workers: 4}).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if want := 6 * 2; len(recs) != want {
		t.Fatalf("%d records, want %d", len(recs), want)
	}
	for _, rec := range recs {
		if rec.GPUFrac != 0.4 {
			t.Errorf("record %s carries gpu fraction %g", rec.Key, rec.GPUFrac)
		}
		if rec.Finished != 30 {
			t.Errorf("%s finished %d of 30 jobs", rec.Key, rec.Finished)
		}
	}
}

// TestGPUBimodalInfeasibleCellRejected: this seed's workload contains a
// 16-task job demanding memory and GPU together; on gpu-bimodal only four
// of the 16 nodes carry GPUs, so the job can never place all tasks
// simultaneously and the cell must fail eagerly with the simulator's
// typed capacity error instead of deadlocking mid-run.
func TestGPUBimodalInfeasibleCellRejected(t *testing.T) {
	g := gpuGrid()
	g.Algorithms = []string{"greedy-pmtn"}
	g.Loads = []float64{0.8}
	g.NodeMixes = []string{"gpu-bimodal"}
	g.GPUFrac = 0.4
	_, err := (&Runner{Workers: 1}).Run(g)
	if err == nil {
		t.Fatal("infeasible gpu-bimodal cell completed")
	}
	var ice *sim.InsufficientCapacityError
	if !errors.As(err, &ice) {
		t.Fatalf("err = %v, want InsufficientCapacityError", err)
	}
	if ice.Slots >= ice.Tasks {
		t.Errorf("error reports %d slots for %d tasks", ice.Slots, ice.Tasks)
	}
}

// TestGPUAxisChangesTraces: the decorated cells are distinct simulations —
// same seed and grid with and without the GPU axis give different keys and
// (on a GPU-constrained mix) different outcomes.
func TestGPUAxisChangesTraces(t *testing.T) {
	with := gpuGrid()
	without := gpuGrid()
	without.GPUFrac = 0
	cw := with.Cells()
	co := without.Cells()
	if len(cw) != len(co) {
		t.Fatalf("cell counts differ: %d vs %d", len(cw), len(co))
	}
	for i := range cw {
		if cw[i].Key() == co[i].Key() {
			t.Fatalf("gpu and non-gpu cells share key %s", cw[i].Key())
		}
	}
}
