package campaign

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/cluster"
	"repro/internal/federation"
	"repro/internal/hpc2n"
	"repro/internal/lublin"
	"repro/internal/metrics"
	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// maxSimTime is the livelock guard shared by every campaign run (50 years
// of simulated time).
const maxSimTime = 50 * 365 * 24 * 3600

// Runner executes a grid's cells on a bounded worker pool. The zero value
// runs on all cores with no sink and no skipping.
type Runner struct {
	// Workers bounds concurrent simulations; <=0 means GOMAXPROCS.
	Workers int
	// Sink, when non-nil, receives every finished record as it completes.
	// Completion order is nondeterministic with more than one worker; sort
	// records by key (SortRecords) for a canonical view.
	Sink Sink
	// Skip holds cell keys to treat as already finished (checkpoint
	// resume); their cells are neither simulated nor re-emitted.
	Skip map[string]bool
	// Progress, when non-nil, is called after each finished cell with the
	// number of cells done and the total to run. Calls are serialised.
	Progress func(done, total int, rec Record)
	// Observe, when non-nil, is called once per cell before its
	// simulation; a non-nil return value receives that cell's scheduling
	// transitions (sim.Observer). Observation does not perturb results:
	// event sequences are a deterministic function of the cell alone, so
	// they are identical for any worker count.
	Observe func(Cell) sim.Observer
	// Stream, when set, feeds each cell's jobs through the simulator's
	// streaming path (lazy admission plus pooled runtime records) instead
	// of materializing the arrival schedule up front. Results are
	// identical either way; the switch exists to bound live memory on
	// very large traces and to exercise the streaming engine in anger.
	Stream bool
	// FedWorkers sets federation.Spec.Workers for federated cells:
	// values above 1 advance a cell's member clusters concurrently
	// between dispatch points. The default 0 keeps federated cells
	// serial — the cell pool above already owns the cores — and is the
	// right choice except for few-cell campaigns of wide topologies.
	// Records are byte-identical across every value: FedWorkers is an
	// execution knob, not a grid axis, so it never appears in keys or
	// JSONL (pinned by test).
	FedWorkers int
	// OnJob, when non-nil, is called once per retained job result of every
	// finished cell, after the cell's invariants validate and before its
	// record reaches the Sink. It exists to feed streaming aggregators
	// (internal/metrics/online) without perturbing records: the fold walks
	// the already-retained per-job results, so record bytes are identical
	// with or without the tap. Cells finish on concurrent workers, so OnJob
	// must be safe for concurrent use.
	OnJob func(Cell, sim.JobResult)
}

// Run expands, validates and executes the grid, returning the records of
// every cell that was not skipped, sorted by cell key. The first cell error
// aborts the run.
func (r *Runner) Run(g *Grid) ([]Record, error) {
	return r.RunContext(context.Background(), g)
}

// RunContext is Run with cooperative cancellation. Each worker checks the
// context before claiming another cell and the simulator checks it between
// events, so cancellation stops the campaign within one cell per worker.
// Cells finished before the cancellation are returned (sorted by key) and
// were already streamed to the Sink, so a JSONL checkpoint stays valid and
// resumable: exactly the completed cells are skipped on resume. The
// returned error wraps ctx.Err() when the run was cancelled.
func (r *Runner) RunContext(ctx context.Context, g *Grid) ([]Record, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	cells := g.Cells()
	if len(r.Skip) > 0 {
		kept := cells[:0]
		for _, c := range cells {
			if !r.Skip[c.Key()] {
				kept = append(kept, c)
			}
		}
		cells = kept
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	mat := newMaterialiser()
	records := make([]Record, 0, len(cells))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	next := make(chan Cell, len(cells))
	for _, c := range cells {
		next <- c
	}
	close(next)
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					return
				}
				rec, err := runCell(ctx, r, mat, g, c)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("campaign: cell %s: %w", c.Key(), err)
					}
					mu.Unlock()
					return
				}
				if r.Sink != nil {
					if serr := r.Sink.Write(rec); serr != nil && firstErr == nil {
						firstErr = fmt.Errorf("campaign: sink: %w", serr)
						mu.Unlock()
						return
					}
				}
				records = append(records, rec)
				done++
				if r.Progress != nil {
					r.Progress(done, len(cells), rec)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil && !errors.Is(firstErr, context.Canceled) && !errors.Is(firstErr, context.DeadlineExceeded) {
		return nil, firstErr
	}
	SortRecords(records)
	if err := ctx.Err(); err != nil {
		return records, fmt.Errorf("campaign: grid %q interrupted after %d of %d cells: %w",
			g.Name, done, len(cells), err)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return records, nil
}

// runCell materialises the cell's trace and simulates it, producing the
// checkpoint record. Federated cells (non-empty Topology) run through the
// shared-clock orchestrator instead of a single simulator.
func runCell(ctx context.Context, r *Runner, mat *materialiser, g *Grid, c Cell) (Record, error) {
	tr, err := mat.trace(c)
	if err != nil {
		return Record{}, err
	}
	if c.Topology != "" {
		return runFederatedCell(ctx, r, g, c, tr)
	}
	s, err := sched.New(c.Algorithm)
	if err != nil {
		return Record{}, err
	}
	// The node-mix profile is laid out over the materialised trace's node
	// count (families like hpc2n fix their own cluster size).
	cl, err := cluster.Profile(c.NodeMix, tr.Nodes)
	if err != nil {
		return Record{}, err
	}
	// A GPU-demanding trace on a two-dimensional mix gets a unit GPU
	// capacity per node, so the demand axis is satisfiable everywhere;
	// GPU profiles keep their own layout.
	cl = cl.ExtendUnit(tr.Dims())
	// Each cell resolves a fresh objective instance (objectives may carry
	// state, like schedulers).
	obj, err := placement.ByName(c.Objective)
	if err != nil {
		return Record{}, err
	}
	var obs sim.Observer
	if r.Observe != nil {
		obs = r.Observe(c)
	}
	// Streaming mode hands the simulator a meta-only trace and pulls jobs
	// from a source; the job list itself stays owned by the materialiser
	// cache and runtime records are pooled as jobs complete.
	simTrace := tr
	var source workload.JobSource
	if r.Stream {
		simTrace = &workload.Trace{Name: tr.Name, Nodes: tr.Nodes, NodeMemGB: tr.NodeMemGB}
		source = workload.NewSliceSource(tr)
	}
	simulator, err := sim.New(sim.Config{
		Trace:            simTrace,
		Source:           source,
		Cluster:          cl,
		Penalty:          c.Penalty,
		CheckInvariants:  g.Check,
		RecordSchedTimes: g.Timing,
		MaxSimTime:       maxSimTime,
		Observer:         obs,
		Objective:        obj,
	}, s)
	if err != nil {
		return Record{}, err
	}
	res, err := simulator.RunContext(ctx)
	if err != nil {
		return Record{}, err
	}
	if err := metrics.Validate(res); err != nil {
		return Record{}, err
	}
	sum := metrics.Summarize(res)
	if sum.Jobs == 0 {
		return Record{}, fmt.Errorf("no finished jobs")
	}
	if r.OnJob != nil {
		for _, jr := range res.Jobs {
			r.OnJob(c, jr)
		}
	}
	costs := metrics.Costs(res)
	rec := Record{
		Key:       c.Key(),
		Seed:      c.Seed,
		Family:    c.Family,
		Trace:     tr.Name,
		TraceIdx:  c.TraceIdx,
		Load:      c.Load,
		Nodes:     c.Nodes,
		Jobs:      c.Jobs,
		NodeMix:   c.NodeMix,
		GPUFrac:   c.GPUFrac,
		GPUCorr:   c.GPUCorr,
		Objective: c.Objective,
		Penalty:   c.Penalty,
		Algorithm: c.Algorithm,

		MaxStretch:  sum.MaxStretch,
		AvgStretch:  sum.AvgStretch,
		Makespan:    res.Makespan,
		Utilization: res.Utilization(),
		Finished:    len(res.Jobs),
		Events:      res.Events,
		Cost:        res.NodeCostSeconds,

		PmtnGBps:    costs.PmtnGBps,
		MigGBps:     costs.MigGBps,
		PmtnPerHour: costs.PmtnPerHour,
		MigPerHour:  costs.MigPerHour,
		PmtnPerJob:  costs.PmtnPerJob,
		MigPerJob:   costs.MigPerJob,
	}
	if g.Timing {
		rec.Timing = aggregateTiming(res.SchedSamples)
	}
	return rec, nil
}

// runFederatedCell runs one federated cell: the topology is parsed over
// the cell's node count and mix, the trace feeds the shared-clock
// orchestrator as the global arrival stream, and the record is built from
// the merged federation result (per-member routing counts ride along in
// Dispatched). Every quantity is a deterministic function of the cell, so
// federated campaigns checkpoint and resume exactly like single-cluster
// ones.
func runFederatedCell(ctx context.Context, r *Runner, g *Grid, c Cell, tr *workload.Trace) (Record, error) {
	members, err := federation.ParseTopology(c.Topology, tr.Nodes, c.NodeMix)
	if err != nil {
		return Record{}, err
	}
	fspec := federation.Spec{
		TraceName:        tr.Name,
		NodeMemGB:        tr.NodeMemGB,
		Dims:             tr.Dims(),
		Members:          members,
		Dispatcher:       c.Dispatch,
		Algorithm:        c.Algorithm,
		Objective:        c.Objective,
		Penalty:          c.Penalty,
		MaxSimTime:       maxSimTime,
		CheckInvariants:  g.Check,
		RecordSchedTimes: g.Timing,
		Workers:          r.FedWorkers,
	}
	if r.Observe != nil {
		obs := r.Observe(c)
		fspec.Observer = func(int) sim.Observer { return obs }
	}
	fed, err := federation.New(fspec, workload.NewSliceSource(tr))
	if err != nil {
		return Record{}, err
	}
	res, err := fed.Run(ctx)
	if err != nil {
		return Record{}, err
	}
	sum := res.Summary
	if sum.Jobs == 0 {
		return Record{}, fmt.Errorf("no finished jobs")
	}
	if r.OnJob != nil {
		for _, jr := range res.Merged.Jobs {
			r.OnJob(c, jr)
		}
	}
	dispatched := make([]int, len(res.Clusters))
	for i := range res.Clusters {
		dispatched[i] = res.Clusters[i].Dispatched
	}
	rec := Record{
		Key:       c.Key(),
		Seed:      c.Seed,
		Family:    c.Family,
		Trace:     tr.Name,
		TraceIdx:  c.TraceIdx,
		Load:      c.Load,
		Nodes:     c.Nodes,
		Jobs:      c.Jobs,
		NodeMix:   c.NodeMix,
		GPUFrac:   c.GPUFrac,
		GPUCorr:   c.GPUCorr,
		Objective: c.Objective,
		Penalty:   c.Penalty,
		Algorithm: c.Algorithm,
		Topology:  c.Topology,
		Dispatch:  c.Dispatch,

		MaxStretch:  sum.MaxStretch,
		AvgStretch:  sum.AvgStretch,
		Makespan:    res.Merged.Makespan,
		Utilization: res.Merged.Utilization(),
		Finished:    len(res.Merged.Jobs),
		Events:      res.Merged.Events,
		Cost:        res.Merged.NodeCostSeconds,
		Dispatched:  dispatched,

		PmtnGBps:    res.Costs.PmtnGBps,
		MigGBps:     res.Costs.MigGBps,
		PmtnPerHour: res.Costs.PmtnPerHour,
		MigPerHour:  res.Costs.MigPerHour,
		PmtnPerJob:  res.Costs.PmtnPerJob,
		MigPerJob:   res.Costs.MigPerJob,
	}
	if g.Timing {
		rec.Timing = aggregateTiming(res.Merged.SchedSamples)
	}
	return rec, nil
}

// aggregateTiming folds raw scheduler timing samples into the mergeable
// per-cell aggregate.
func aggregateTiming(samples []sim.SchedSample) *TimingAgg {
	agg := &TimingAgg{Min: math.Inf(1), LargeMin: math.Inf(1)}
	for _, s := range samples {
		agg.Samples++
		agg.Sum += s.Seconds
		agg.SumSq += s.Seconds * s.Seconds
		agg.Min = math.Min(agg.Min, s.Seconds)
		agg.Max = math.Max(agg.Max, s.Seconds)
		if s.JobsInSystem <= 10 {
			if s.Seconds < 1e-3 {
				agg.SmallFast++
			}
		} else {
			agg.LargeN++
			agg.LargeSum += s.Seconds
			agg.LargeSqSm += s.Seconds * s.Seconds
			agg.LargeMin = math.Min(agg.LargeMin, s.Seconds)
			agg.LargeMax = math.Max(agg.LargeMax, s.Seconds)
		}
		if s.JobsInSystem > agg.MaxJobs {
			agg.MaxJobs = s.JobsInSystem
		}
	}
	if agg.Samples == 0 {
		agg.Min = 0
	}
	if agg.LargeN == 0 {
		agg.LargeMin = 0
	}
	return agg
}

// materialiser builds and caches the traces a grid's cells run on. Base
// traces are derived from RNG substreams keyed only by (seed, family,
// index), never by execution order, so any subset of cells sees identical
// traces no matter how the worker pool interleaves. Load scaling is pure
// and cheap, so scaled variants are derived per cell rather than cached.
type materialiser struct {
	mu      sync.Mutex
	entries map[string]*matEntry
}

type matEntry struct {
	once sync.Once
	tr   *workload.Trace
	err  error
}

func newMaterialiser() *materialiser {
	return &materialiser{entries: map[string]*matEntry{}}
}

// trace returns the (possibly load-scaled) trace for one cell.
func (m *materialiser) trace(c Cell) (*workload.Trace, error) {
	base, err := m.base(c)
	if err != nil {
		return nil, err
	}
	if c.Load == Unscaled {
		return base, nil
	}
	return base.ScaleToLoad(c.Load)
}

// base returns the unscaled trace for the cell, generating it at most once
// per (seed, family, index, nodes, jobs, gpu, corr) combination.
func (m *materialiser) base(c Cell) (*workload.Trace, error) {
	key := fmt.Sprintf("%s/%d/%d/%d/%d/%g/%g", c.Family, c.Seed, c.TraceIdx, c.Nodes, c.Jobs, c.GPUFrac, c.GPUCorr)
	m.mu.Lock()
	e, ok := m.entries[key]
	if !ok {
		e = &matEntry{}
		m.entries[key] = e
	}
	m.mu.Unlock()
	e.once.Do(func() { e.tr, e.err = generateBase(c) })
	return e.tr, e.err
}

// generateBase draws the cell's base trace from its deterministic RNG
// substream. The lublin split labels match the historical
// experiments.Config.BaseTraces labels so campaigns reproduce the exact
// synthetic traces of the pre-engine harness. The hpc2n family
// intentionally differs from the pre-engine Table I leg: instead of one
// continuous multi-week log split into segments (whose week contents
// depended on the total week count), every weekly segment is an
// independent one-week synthesis, so each cell's trace is a function of
// (seed, index) alone.
func generateBase(c Cell) (*workload.Trace, error) {
	base, err := generateFamilyBase(c)
	if err != nil || c.GPUFrac == 0 {
		return base, err
	}
	// The GPU axis is a deterministic decoration of the base trace: a
	// dedicated substream keyed by (seed, family, index) hands GPUFrac of
	// the jobs a per-task GPU demand in the shared default bounds. GPUCorr
	// mixes the per-task memory requirement into the demand variate; corr
	// zero is exactly the independent model with identical variate
	// consumption, so pre-correlation cells see byte-identical traces.
	root := rng.New(c.Seed)
	return workload.AttachGPUDemandCorrelated(base,
		root.Split(fmt.Sprintf("gpu-%s-%d", c.Family, c.TraceIdx)),
		c.GPUFrac, c.GPUCorr, workload.GPUDemandLo, workload.GPUDemandHi)
}

// generateFamilyBase draws the cell's two-resource base trace.
func generateFamilyBase(c Cell) (*workload.Trace, error) {
	root := rng.New(c.Seed)
	switch c.Family {
	case FamilyLublin:
		r := root.Split(fmt.Sprintf("trace-%d", c.TraceIdx))
		return lublin.GenerateTrace(r, lublin.DefaultParams(c.Nodes), c.Jobs,
			fmt.Sprintf("lublin-s%d-%03d", c.Seed, c.TraceIdx))
	case FamilyHPC2N:
		// Each weekly segment is an independent one-week synthesis drawn
		// from its own substream, so a cell's trace depends only on
		// (seed, index) — never on how many weeks the family sweeps.
		p := hpc2n.DefaultSynthParams()
		p.Weeks = 1
		weeks, _, err := hpc2n.WeeklyTraces(root.Split(fmt.Sprintf("hpc2n-week-%d", c.TraceIdx)), p)
		if err != nil {
			return nil, err
		}
		if len(weeks) == 0 {
			return nil, fmt.Errorf("hpc2n synthesis produced no weekly segments")
		}
		week := weeks[0]
		week.Name = fmt.Sprintf("hpc2n-s%d-w%03d", c.Seed, c.TraceIdx)
		return week, nil
	default:
		return nil, fmt.Errorf("unknown workload family %q", c.Family)
	}
}
