package campaign

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/sim"
)

func observeGrid() *Grid {
	return &Grid{
		Name:       "observe",
		Seeds:      []uint64{7},
		Algorithms: []string{"easy", "greedy-pmtn"},
		Families:   []Family{{Kind: FamilyLublin, Count: 2}},
		Loads:      []float64{0.7},
		Penalties:  []float64{300},
		Nodes:      []int{16},
		// Small traces keep the battery fast.
		JobsPerTrace: 30,
	}
}

// collectEvents runs the grid with the given worker count, recording every
// cell's observer event sequence keyed by cell key.
func collectEvents(t *testing.T, workers int) map[string][]sim.Event {
	t.Helper()
	var mu sync.Mutex
	recorders := map[string]*sim.Recorder{}
	r := &Runner{
		Workers: workers,
		Observe: func(c Cell) sim.Observer {
			rec := &sim.Recorder{}
			mu.Lock()
			recorders[c.Key()] = rec
			mu.Unlock()
			return rec
		},
	}
	if _, err := r.Run(observeGrid()); err != nil {
		t.Fatal(err)
	}
	out := map[string][]sim.Event{}
	for key, rec := range recorders {
		evs := rec.Events()
		// Elapsed is wall-clock and the only nondeterministic field.
		for i := range evs {
			evs[i].Elapsed = 0
		}
		out[key] = evs
	}
	return out
}

// TestObserverSequencesIdenticalAcrossWorkerCounts is the determinism
// guarantee of the observable campaign surface: per-cell event sequences
// are a function of the cell alone, identical no matter how the worker
// pool interleaves cells.
func TestObserverSequencesIdenticalAcrossWorkerCounts(t *testing.T) {
	serial := collectEvents(t, 1)
	parallel := collectEvents(t, 4)
	if len(serial) == 0 {
		t.Fatal("no cells observed")
	}
	if len(serial) != len(parallel) {
		t.Fatalf("cell sets differ: %d vs %d", len(serial), len(parallel))
	}
	for key, evs := range serial {
		pevs, ok := parallel[key]
		if !ok {
			t.Fatalf("cell %s missing from parallel run", key)
		}
		if len(evs) == 0 {
			t.Errorf("cell %s recorded no events", key)
		}
		if !reflect.DeepEqual(evs, pevs) {
			t.Errorf("cell %s: event sequences differ between 1 and 4 workers", key)
		}
	}
}

// TestRunContextCancelStopsWithinOneCell cancels a serial campaign from
// the progress hook after the first record: the run must stop after at
// most one further cell, return the completed records, and report an error
// wrapping context.Canceled.
func TestRunContextCancelStopsWithinOneCell(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := &Runner{Workers: 1}
	r.Progress = func(done, total int, rec Record) {
		if done == 1 {
			cancel()
		}
	}
	recs, err := r.RunContext(ctx, observeGrid())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	total := len(observeGrid().Cells())
	if len(recs) == 0 || len(recs) >= total {
		t.Fatalf("cancelled run returned %d of %d records", len(recs), total)
	}
	// Completed cells must be exactly resumable: running the grid again
	// with their keys skipped completes the rest and nothing else.
	skip := map[string]bool{}
	for _, rec := range recs {
		skip[rec.Key] = true
	}
	rest, err := (&Runner{Workers: 1, Skip: skip}).Run(observeGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs)+len(rest) != total {
		t.Fatalf("resume mismatch: %d + %d != %d", len(recs), len(rest), total)
	}
	seen := map[string]bool{}
	for _, rec := range append(recs, rest...) {
		if seen[rec.Key] {
			t.Errorf("cell %s ran twice", rec.Key)
		}
		seen[rec.Key] = true
	}
}
