// Package swf reads and writes the Standard Workload Format (SWF) of the
// Parallel Workloads Archive, the format of the HPC2N log used in the
// paper's Section IV-C. Each record is one line of 18 whitespace-separated
// integer fields; missing values are -1; comment lines start with ';'.
package swf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Record is one SWF job entry. Field names follow the SWF specification;
// all values are int64 with -1 meaning "unknown" as in the format.
type Record struct {
	JobNumber      int64
	SubmitTime     int64 // seconds from log start
	WaitTime       int64 // seconds
	RunTime        int64 // seconds
	AllocatedProcs int64
	AvgCPUTimeUsed int64 // seconds, per processor
	UsedMemoryKB   int64 // kilobytes, per processor
	RequestedProcs int64
	RequestedTime  int64
	RequestedMemKB int64 // kilobytes, per processor
	Status         int64
	UserID         int64
	GroupID        int64
	ExecutableNum  int64
	QueueNum       int64
	PartitionNum   int64
	PrecedingJob   int64
	ThinkTime      int64
}

// fields flattens a record into SWF column order.
func (r Record) fields() [18]int64 {
	return [18]int64{
		r.JobNumber, r.SubmitTime, r.WaitTime, r.RunTime, r.AllocatedProcs,
		r.AvgCPUTimeUsed, r.UsedMemoryKB, r.RequestedProcs, r.RequestedTime,
		r.RequestedMemKB, r.Status, r.UserID, r.GroupID, r.ExecutableNum,
		r.QueueNum, r.PartitionNum, r.PrecedingJob, r.ThinkTime,
	}
}

func fromFields(f [18]int64) Record {
	return Record{
		JobNumber: f[0], SubmitTime: f[1], WaitTime: f[2], RunTime: f[3],
		AllocatedProcs: f[4], AvgCPUTimeUsed: f[5], UsedMemoryKB: f[6],
		RequestedProcs: f[7], RequestedTime: f[8], RequestedMemKB: f[9],
		Status: f[10], UserID: f[11], GroupID: f[12], ExecutableNum: f[13],
		QueueNum: f[14], PartitionNum: f[15], PrecedingJob: f[16], ThinkTime: f[17],
	}
}

// Log is a parsed SWF file: its records plus the header comments (the
// lines starting with ';', stripped of the marker).
type Log struct {
	Header  []string
	Records []Record
}

// Parse reads an SWF stream. Lines with fewer than 18 fields are padded
// with -1 (some archive logs truncate trailing unknowns); blank lines are
// skipped.
func Parse(r io.Reader) (*Log, error) {
	log := &Log{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			log.Header = append(log.Header, strings.TrimSpace(strings.TrimPrefix(line, ";")))
			continue
		}
		parts := strings.Fields(line)
		if len(parts) > 18 {
			return nil, fmt.Errorf("swf: line %d has %d fields (max 18)", lineno, len(parts))
		}
		var f [18]int64
		for i := range f {
			f[i] = -1
		}
		for i, p := range parts {
			v, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("swf: line %d field %d: %v", lineno, i+1, err)
			}
			f[i] = v
		}
		log.Records = append(log.Records, fromFields(f))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("swf: %v", err)
	}
	return log, nil
}

// Write serializes the log in SWF format.
func (l *Log) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, h := range l.Header {
		if _, err := fmt.Fprintf(bw, "; %s\n", h); err != nil {
			return err
		}
	}
	for _, rec := range l.Records {
		f := rec.fields()
		for i, v := range f {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatInt(v, 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// HeaderValue extracts "Key: value" metadata from the header comments
// (e.g. "MaxNodes", "MaxProcs"). It returns "" when absent.
func (l *Log) HeaderValue(key string) string {
	prefix := key + ":"
	for _, h := range l.Header {
		if strings.HasPrefix(h, prefix) {
			return strings.TrimSpace(strings.TrimPrefix(h, prefix))
		}
	}
	return ""
}
