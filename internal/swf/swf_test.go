package swf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

const sample = `; Computer: Test Cluster
; MaxNodes: 120
; MaxProcs: 240
1 0 5 600 4 550 204800 4 700 204800 1 101 5 3 1 1 -1 -1
2 60 10 120 1 100 -1 1 -1 -1 0 102 5 3 1 1 -1 -1
3 120 0 60 16 -1 102400 16 100 102400 1 103 6 4 2 1 2 30
`

func TestParse(t *testing.T) {
	log, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Records) != 3 {
		t.Fatalf("%d records", len(log.Records))
	}
	if len(log.Header) != 3 {
		t.Fatalf("%d header lines", len(log.Header))
	}
	r := log.Records[0]
	if r.JobNumber != 1 || r.SubmitTime != 0 || r.WaitTime != 5 || r.RunTime != 600 ||
		r.AllocatedProcs != 4 || r.AvgCPUTimeUsed != 550 || r.UsedMemoryKB != 204800 ||
		r.RequestedProcs != 4 || r.RequestedTime != 700 || r.RequestedMemKB != 204800 ||
		r.Status != 1 || r.UserID != 101 || r.GroupID != 5 || r.ExecutableNum != 3 ||
		r.QueueNum != 1 || r.PartitionNum != 1 || r.PrecedingJob != -1 || r.ThinkTime != -1 {
		t.Errorf("record 1 fields wrong: %+v", r)
	}
	if log.Records[1].UsedMemoryKB != -1 {
		t.Error("missing memory should parse as -1")
	}
}

func TestParsePadsShortLines(t *testing.T) {
	log, err := Parse(strings.NewReader("7 10 -1 30 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	r := log.Records[0]
	if r.JobNumber != 7 || r.AllocatedProcs != 2 {
		t.Errorf("short line parsed wrong: %+v", r)
	}
	if r.ThinkTime != -1 || r.Status != -1 {
		t.Error("missing trailing fields should default to -1")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("1 2 three\n")); err == nil {
		t.Error("non-numeric field accepted")
	}
	long := strings.Repeat("1 ", 19)
	if _, err := Parse(strings.NewReader(long + "\n")); err == nil {
		t.Error("19-field line accepted")
	}
}

func TestParseSkipsBlankLines(t *testing.T) {
	log, err := Parse(strings.NewReader("\n\n1 0 -1 60 1\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Records) != 1 {
		t.Errorf("%d records", len(log.Records))
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	orig, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(orig.Records) || len(back.Header) != len(orig.Header) {
		t.Fatalf("round trip changed sizes")
	}
	for i := range orig.Records {
		if back.Records[i] != orig.Records[i] {
			t.Errorf("record %d changed: %+v vs %+v", i, orig.Records[i], back.Records[i])
		}
	}
}

// Property: any record survives a write/parse round trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(vals [18]int16) bool {
		var rec Record
		fields := [18]*int64{
			&rec.JobNumber, &rec.SubmitTime, &rec.WaitTime, &rec.RunTime,
			&rec.AllocatedProcs, &rec.AvgCPUTimeUsed, &rec.UsedMemoryKB,
			&rec.RequestedProcs, &rec.RequestedTime, &rec.RequestedMemKB,
			&rec.Status, &rec.UserID, &rec.GroupID, &rec.ExecutableNum,
			&rec.QueueNum, &rec.PartitionNum, &rec.PrecedingJob, &rec.ThinkTime,
		}
		for i := range fields {
			*fields[i] = int64(vals[i])
		}
		log := &Log{Records: []Record{rec}}
		var buf bytes.Buffer
		if err := log.Write(&buf); err != nil {
			return false
		}
		back, err := Parse(&buf)
		if err != nil || len(back.Records) != 1 {
			return false
		}
		return back.Records[0] == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeaderValue(t *testing.T) {
	log, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got := log.HeaderValue("MaxNodes"); got != "120" {
		t.Errorf("MaxNodes = %q", got)
	}
	if got := log.HeaderValue("Computer"); got != "Test Cluster" {
		t.Errorf("Computer = %q", got)
	}
	if got := log.HeaderValue("Missing"); got != "" {
		t.Errorf("Missing = %q", got)
	}
}
