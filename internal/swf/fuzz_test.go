package swf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse asserts the loader's crash-safety contract: no input — however
// malformed, truncated or hostile — may panic the parser. Accepted inputs
// must additionally survive a Write/Parse round trip with every record
// intact, since resumable campaigns depend on re-reading what they wrote.
func FuzzParse(f *testing.F) {
	f.Add([]byte("; Version: 2.2\n; MaxNodes: 120\n1 0 10 3600 4 -1 1048576 4 7200 -1 1 3 2 1 1 1 -1 -1\n"))
	f.Add([]byte("2 60 -1 100 1 -1 -1 1 -1 -1 0 5 1 1 1 1 -1 -1"))
	f.Add([]byte("1 2 3\n"))                                           // short line, padded with -1
	f.Add([]byte("1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19\n")) // too many fields
	f.Add([]byte("not numbers at all\n"))
	f.Add([]byte(";\n;;\n;   \n"))
	f.Add([]byte("9223372036854775807 -9223372036854775808 0\n"))
	f.Add([]byte("99999999999999999999 0 0\n")) // int64 overflow
	f.Add([]byte("\x00\xff\xfe\n1\n"))
	f.Add([]byte(strings.Repeat("1 ", 17) + "1\n; trailing header\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := Parse(bytes.NewReader(data))
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		var buf bytes.Buffer
		if err := log.Write(&buf); err != nil {
			t.Fatalf("Write failed on accepted log: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v\noriginal: %q\nwritten: %q", err, data, buf.String())
		}
		if len(back.Records) != len(log.Records) {
			t.Fatalf("round trip lost records: %d -> %d", len(log.Records), len(back.Records))
		}
		for i := range back.Records {
			if back.Records[i] != log.Records[i] {
				t.Fatalf("record %d changed in round trip:\n%+v\n%+v", i, log.Records[i], back.Records[i])
			}
		}
	})
}
