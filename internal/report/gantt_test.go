package report

import (
	"strings"
	"testing"
)

func TestGanttRender(t *testing.T) {
	g := &Gantt{
		Title: "demo schedule",
		Width: 40,
		Lanes: []GanttLane{
			{Label: "job 0", Segments: []GanttSegment{
				{From: 0, To: 50, State: "running", Yield: 1.0},
				{From: 50, To: 60, State: "paused"},
				{From: 60, To: 80, State: "frozen"},
				{From: 80, To: 100, State: "running", Yield: 0.5},
			}},
			{Label: "job 1", Segments: []GanttSegment{
				{From: 0, To: 30, State: "waiting"},
				{From: 30, To: 100, State: "running", Yield: 0.22},
			}},
		},
	}
	var b strings.Builder
	if err := g.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "demo schedule") {
		t.Error("missing title")
	}
	lines := strings.Split(out, "\n")
	var lane0 string
	for _, l := range lines {
		if strings.HasPrefix(l, "job 0") {
			lane0 = l
		}
	}
	if lane0 == "" {
		t.Fatal("missing lane for job 0")
	}
	// Full-yield running shows '9', half yield '5' (0.5*9 rounds to 5
	// via math.Round(4.5)=5), pause 'p', freeze '#'.
	for _, want := range []string{"9", "5", "p", "#"} {
		if !strings.Contains(lane0, want) {
			t.Errorf("lane 0 missing %q: %q", want, lane0)
		}
	}
	var lane1 string
	for _, l := range lines {
		if strings.HasPrefix(l, "job 1") {
			lane1 = l
		}
	}
	if !strings.Contains(lane1, ".") || !strings.Contains(lane1, "2") {
		t.Errorf("lane 1 missing waiting/yield glyphs: %q", lane1)
	}
	if !strings.Contains(out, "legend:") {
		t.Error("missing legend")
	}
}

func TestGanttEmpty(t *testing.T) {
	g := &Gantt{Lanes: []GanttLane{{Label: "x"}}}
	var b strings.Builder
	if err := g.Render(&b); err == nil {
		t.Error("empty gantt rendered without error")
	}
}

func TestGanttYieldGlyphBounds(t *testing.T) {
	// Tiny positive yields round up to '1'; yields above 1 clamp at '9'.
	if g := glyph(GanttSegment{State: "running", Yield: 0.01}); g != '1' {
		t.Errorf("glyph(0.01) = %c", g)
	}
	if g := glyph(GanttSegment{State: "running", Yield: 2}); g != '9' {
		t.Errorf("glyph(2) = %c", g)
	}
	if g := glyph(GanttSegment{State: "unknown"}); g != '?' {
		t.Errorf("glyph(unknown) = %c", g)
	}
}

func TestGanttDominantSegmentWins(t *testing.T) {
	// Two segments share one cell; the one covering more of the cell
	// chooses the glyph. Width 1 => one cell covering [0, 100).
	g := &Gantt{
		Width: 1,
		Lanes: []GanttLane{{Label: "j", Segments: []GanttSegment{
			{From: 0, To: 80, State: "running", Yield: 1},
			{From: 80, To: 100, State: "paused"},
		}}},
	}
	var b strings.Builder
	if err := g.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "|9|") {
		t.Errorf("dominant glyph not selected: %q", b.String())
	}
}
