// Package report renders experiment output: fixed-width text tables, CSV,
// and ASCII line charts (used to draw the Figure 1 degradation-factor
// curves on a logarithmic axis in a terminal).
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple fixed-width text table with a title and column headers.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of pre-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table to w with columns padded to their widest cell.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (headers first). Cells containing
// commas or quotes are quoted.
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one labelled curve for an ASCII chart.
type Series struct {
	Label  string
	Points []Point
}

// Point is one (x, y) observation.
type Point struct{ X, Y float64 }

// Chart draws labelled series as an ASCII scatter/line chart. LogY plots
// the y axis on a log10 scale, as in the paper's Figure 1.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 70)
	Height int // plot area rows (default 20)
	LogY   bool
	Series []Series
}

// markers assigns one rune per series, cycling if necessary.
var markers = []rune{'*', '+', 'o', 'x', '#', '@', '%', '&', '$'}

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 70
	}
	if height <= 0 {
		height = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	ty := func(y float64) float64 {
		if c.LogY {
			return math.Log10(math.Max(y, 1e-12))
		}
		return y
	}
	for _, s := range c.Series {
		for _, p := range s.Points {
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, ty(p.Y))
			maxY = math.Max(maxY, ty(p.Y))
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("report: chart %q has no points", c.Title)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			col := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((ty(p.Y) - minY) / (maxY - minY) * float64(height-1)))
			grid[height-1-row][col] = m
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yTick := func(row int) float64 {
		v := minY + (maxY-minY)*float64(height-1-row)/float64(height-1)
		if c.LogY {
			return math.Pow(10, v)
		}
		return v
	}
	for row := 0; row < height; row++ {
		label := "          "
		if row == 0 || row == height-1 || row == height/2 {
			label = fmt.Sprintf("%9.3g ", yTick(row))
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(grid[row]))
	}
	fmt.Fprintf(&b, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s%-10.3g%s%10.3g\n", strings.Repeat(" ", 10), minX, strings.Repeat(" ", width-20), maxX)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "           x: %s   y: %s%s\n", c.XLabel, c.YLabel, logSuffix(c.LogY))
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "           %c %s\n", markers[si%len(markers)], s.Label)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func logSuffix(logY bool) string {
	if logY {
		return " (log scale)"
	}
	return ""
}
