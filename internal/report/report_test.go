package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("alpha", "1.00")
	tbl.AddRow("a-much-longer-name", "2")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator line = %q", lines[2])
	}
	// Columns aligned: "value" starts at the same offset in every row.
	idx := strings.Index(lines[1], "value")
	if got := strings.Index(lines[3], "1.00"); got != idx {
		t.Errorf("column misaligned: %d vs %d\n%s", got, idx, out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "b"}}
	tbl.AddRow("plain", `has,comma`)
	tbl.AddRow(`has"quote`, "x")
	var b strings.Builder
	if err := tbl.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"has,comma"`) {
		t.Errorf("comma cell not quoted: %q", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Errorf("quote cell not escaped: %q", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("missing header row: %q", out)
	}
}

func TestChartRender(t *testing.T) {
	c := &Chart{
		Title:  "test chart",
		XLabel: "load",
		YLabel: "degradation",
		LogY:   true,
		Series: []Series{
			{Label: "one", Points: []Point{{0.1, 1}, {0.5, 10}, {0.9, 100}}},
			{Label: "two", Points: []Point{{0.1, 5}, {0.5, 5}, {0.9, 5}}},
		},
	}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "test chart") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* one") || !strings.Contains(out, "+ two") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "(log scale)") {
		t.Error("missing log-scale note")
	}
	// Marker characters appear in the plot area.
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("missing plot markers")
	}
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	var b strings.Builder
	if err := c.Render(&b); err == nil {
		t.Error("empty chart rendered without error")
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// A single point (zero x and y ranges) must not divide by zero.
	c := &Chart{Series: []Series{{Label: "p", Points: []Point{{1, 1}}}}}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Error("single point not plotted")
	}
}
