package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// GanttLane is one row of a Gantt chart: a labelled sequence of segments.
type GanttLane struct {
	Label    string
	Segments []GanttSegment
}

// GanttSegment is one interval of a lane. State selects the glyph family:
//
//	"waiting"  -> '.'
//	"paused"   -> 'p'
//	"frozen"   -> '#'
//	"running"  -> '1'..'9' by yield decile ('9' is full speed)
type GanttSegment struct {
	From, To float64
	State    string
	Yield    float64
}

// Gantt renders lanes into a fixed-width ASCII chart with a shared time
// axis. Each character cell covers (maxTime-minTime)/width seconds; a cell
// overlapped by several segments shows the one covering most of the cell.
type Gantt struct {
	Title string
	Width int // plot columns, default 80
	Lanes []GanttLane
}

func glyph(seg GanttSegment) byte {
	switch seg.State {
	case "waiting":
		return '.'
	case "paused":
		return 'p'
	case "frozen":
		return '#'
	case "running":
		d := int(math.Round(seg.Yield * 9))
		if d < 1 {
			d = 1
		}
		if d > 9 {
			d = 9
		}
		return byte('0' + d)
	}
	return '?'
}

// Render writes the chart to w.
func (g *Gantt) Render(w io.Writer) error {
	width := g.Width
	if width <= 0 {
		width = 80
	}
	minT, maxT := math.Inf(1), math.Inf(-1)
	for _, lane := range g.Lanes {
		for _, seg := range lane.Segments {
			minT = math.Min(minT, seg.From)
			maxT = math.Max(maxT, seg.To)
		}
	}
	if math.IsInf(minT, 1) {
		return fmt.Errorf("report: gantt %q has no segments", g.Title)
	}
	if maxT <= minT {
		maxT = minT + 1
	}
	cell := (maxT - minT) / float64(width)

	labelWidth := 0
	for _, lane := range g.Lanes {
		if len(lane.Label) > labelWidth {
			labelWidth = len(lane.Label)
		}
	}

	var b strings.Builder
	if g.Title != "" {
		fmt.Fprintf(&b, "%s\n", g.Title)
	}
	for _, lane := range g.Lanes {
		row := make([]byte, width)
		cover := make([]float64, width)
		for i := range row {
			row[i] = ' '
		}
		segs := append([]GanttSegment(nil), lane.Segments...)
		sort.SliceStable(segs, func(a, bIdx int) bool { return segs[a].From < segs[bIdx].From })
		for _, seg := range segs {
			lo := int((seg.From - minT) / cell)
			hi := int(math.Ceil((seg.To - minT) / cell))
			if hi > width {
				hi = width
			}
			for c := lo; c < hi; c++ {
				cellStart := minT + float64(c)*cell
				cellEnd := cellStart + cell
				overlap := math.Min(seg.To, cellEnd) - math.Max(seg.From, cellStart)
				if overlap > cover[c] {
					cover[c] = overlap
					row[c] = glyph(seg)
				}
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", labelWidth, lane.Label, string(row))
	}
	axis := fmt.Sprintf("%-*s  %-12.4g%s%12.4g", labelWidth, "", minT,
		strings.Repeat(" ", maxInt(0, width-24)), maxT)
	fmt.Fprintf(&b, "%s\n", axis)
	fmt.Fprintf(&b, "%-*s  legend: . waiting  p paused  # frozen(penalty)  1-9 running yield decile\n",
		labelWidth, "")
	_, err := io.WriteString(w, b.String())
	return err
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
