// Package stats provides the small set of statistics used by the experiment
// harness: streaming mean/standard deviation/extrema (Welford's algorithm),
// percentiles, and fixed-width histograms. It exists so that experiment code
// never hand-rolls numerically unstable accumulations.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Stream accumulates summary statistics one observation at a time using
// Welford's online algorithm. The zero value is ready to use.
type Stream struct {
	n        int
	mean, m2 float64
	min, max float64
	sum      float64
}

// Add records one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.sum += x
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll records every value in xs.
func (s *Stream) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations recorded so far.
func (s *Stream) N() int { return s.n }

// Sum returns the sum of all observations.
func (s *Stream) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or NaN with no observations.
func (s *Stream) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Var returns the unbiased sample variance, or NaN with fewer than two
// observations.
func (s *Stream) Var() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the unbiased sample standard deviation. With exactly one
// observation it returns 0 so that single-trace experiment tables remain
// printable; with none it returns NaN.
func (s *Stream) Std() float64 {
	if s.n == 1 {
		return 0
	}
	return math.Sqrt(s.Var())
}

// Min returns the smallest observation, or NaN with none.
func (s *Stream) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation, or NaN with none.
func (s *Stream) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Summary is a value snapshot of a Stream, convenient for table rows.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
	Sum  float64
}

// Summary returns a snapshot of the stream's statistics.
func (s *Stream) Summary() Summary {
	return Summary{N: s.n, Mean: s.Mean(), Std: s.Std(), Min: s.Min(), Max: s.Max(), Sum: s.sum}
}

// String formats the summary as "avg=… std=… max=… (n=…)".
func (s Summary) String() string {
	return fmt.Sprintf("avg=%.2f std=%.2f max=%.2f (n=%d)", s.Mean, s.Std, s.Max, s.N)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies and sorts its input and
// returns NaN for empty input or p outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 100 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Histogram counts observations into nbins equal-width bins over [lo, hi).
// Finite observations outside the range (and infinities) are clamped into
// the first or last bin. NaN observations carry no position at all — the
// float-to-int conversion of a NaN bin index is implementation-defined, so
// counting them would land in an arbitrary bin — and are dropped from the
// bins and the total; DroppedNaN reports how many were seen.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
	nan    int
}

// NewHistogram creates a histogram with nbins bins spanning [lo, hi).
// It panics if nbins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 {
		panic("stats: NewHistogram requires nbins > 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram requires hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Add records one observation. NaN observations are dropped (see the type
// comment); infinities clamp into the edge bins. The bin index is clamped
// in floating point before the int conversion, which would be
// implementation-defined for values beyond the int range.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		h.nan++
		return
	}
	idx := 0
	if f := (x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)); f >= float64(len(h.Counts)) {
		idx = len(h.Counts) - 1
	} else if f > 0 {
		idx = int(f)
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of observations recorded (NaN observations are
// not recorded).
func (h *Histogram) Total() int { return h.total }

// DroppedNaN returns the number of NaN observations dropped by Add.
func (h *Histogram) DroppedNaN() int { return h.nan }

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}
