package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamBasics(t *testing.T) {
	var s Stream
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Error("empty stream should report NaN statistics")
	}
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Min(); got != 2 {
		t.Errorf("Min = %v, want 2", got)
	}
	if got := s.Max(); got != 9 {
		t.Errorf("Max = %v, want 9", got)
	}
	if got := s.Sum(); got != 40 {
		t.Errorf("Sum = %v, want 40", got)
	}
	if got := s.N(); got != 8 {
		t.Errorf("N = %v, want 8", got)
	}
	// Population std of this classic data set is 2; sample variance is
	// 32/7.
	if got := s.Var(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Var = %v, want %v", got, 32.0/7)
	}
}

func TestStreamSingleObservation(t *testing.T) {
	var s Stream
	s.Add(3)
	if got := s.Std(); got != 0 {
		t.Errorf("Std with one observation = %v, want 0", got)
	}
	if !math.IsNaN(s.Var()) {
		t.Error("Var with one observation should be NaN")
	}
}

// Property: Welford matches the naive two-pass computation.
func TestStreamMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		if len(xs) < 2 {
			return true
		}
		var s Stream
		s.AddAll(xs)
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(len(xs))
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		naiveVar := m2 / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(naiveVar))
		return math.Abs(s.Mean()-mean) < 1e-9*math.Max(1, math.Abs(mean)) &&
			math.Abs(s.Var()-naiveVar) < 1e-6*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: min <= mean <= max for any non-empty input.
func TestStreamOrderingProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			// Limit magnitudes: near +-MaxFloat64 the running mean loses
			// the min<=mean<=max invariant to rounding, which is out of
			// scope for simulation-scale data.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var s Stream
		s.AddAll(clean)
		return s.Min() <= s.Mean()+1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	if !math.IsNaN(Percentile(xs, -1)) || !math.IsNaN(Percentile(xs, 101)) {
		t.Error("out-of-range p should be NaN")
	}
	if got := Median(xs); got != 35 {
		t.Errorf("Median = %v", got)
	}
	// The input must not be reordered.
	if xs[0] != 15 || xs[4] != 50 {
		t.Error("Percentile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0, 1.9, 2, 5.5, 9.99, -3, 42} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	// -3 clamps into bin 0; 42 clamps into bin 4.
	if h.Counts[0] != 3 { // 0, 1.9, -3
		t.Errorf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.99, 42
		t.Errorf("bin 4 = %d, want 2", h.Counts[4])
	}
	if got := h.Fraction(0); math.Abs(got-3.0/7) > 1e-12 {
		t.Errorf("Fraction(0) = %v", got)
	}
	if got := h.BinCenter(2); got != 5 {
		t.Errorf("BinCenter(2) = %v, want 5", got)
	}
}

// TestHistogramNonFinite is the regression test for the NaN defect: the
// float-to-int conversion of a NaN bin index is implementation-defined, so
// a NaN observation used to land in an arbitrary bin and inflate Total.
// NaN must be dropped (and reported via DroppedNaN); infinities clamp into
// the edge bins like any other out-of-range observation.
func TestHistogramNonFinite(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(math.NaN())
	h.Add(math.NaN())
	if h.Total() != 0 {
		t.Errorf("Total = %d after NaN observations, want 0", h.Total())
	}
	for i, c := range h.Counts {
		if c != 0 {
			t.Errorf("bin %d = %d after NaN observations, want 0", i, c)
		}
	}
	if h.DroppedNaN() != 2 {
		t.Errorf("DroppedNaN = %d, want 2", h.DroppedNaN())
	}
	h.Add(math.Inf(1))
	h.Add(math.Inf(-1))
	h.Add(5)
	if h.Total() != 3 {
		t.Errorf("Total = %d, want 3", h.Total())
	}
	if h.Counts[4] != 1 || h.Counts[0] != 1 || h.Counts[2] != 1 {
		t.Errorf("bins = %v, want +Inf in bin 4, -Inf in bin 0, 5 in bin 2", h.Counts)
	}
	// A huge finite value whose scaled index overflows int range still
	// clamps into the last bin.
	h.Add(1e300)
	if h.Counts[4] != 2 {
		t.Errorf("bin 4 = %d after 1e300, want 2", h.Counts[4])
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins":   func() { NewHistogram(0, 1, 0) },
		"empty range": func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSummaryString(t *testing.T) {
	var s Stream
	s.AddAll([]float64{1, 2, 3})
	got := s.Summary().String()
	want := "avg=2.00 std=1.00 max=3.00 (n=3)"
	if got != want {
		t.Errorf("Summary.String() = %q, want %q", got, want)
	}
}
