package dfrs_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	dfrs "repro"
	"repro/internal/campaign"
)

// apiGrid is the small homogeneous grid the campaign API tests share. Its
// cells use pre-heterogeneity keys, so it is also the byte-compatibility
// subject.
func apiGrid() dfrs.Grid {
	return dfrs.Grid{
		Name:         "api",
		Seeds:        []uint64{42},
		Algorithms:   []string{"easy", "greedy-pmtn"},
		Families:     []dfrs.CampaignFamily{{Kind: dfrs.FamilyLublin, Count: 2}},
		Loads:        []float64{0.5, 0.8},
		Penalties:    []float64{300},
		Nodes:        []int{16},
		JobsPerTrace: 30,
	}
}

// TestCampaignJSONLByteIdenticalToEngine pins the public API to the
// engine: the JSONL stream produced through dfrs.Campaign (one worker, so
// completion order is deterministic) must be byte-identical to the
// internal campaign runner's output.
func TestCampaignJSONLByteIdenticalToEngine(t *testing.T) {
	g := apiGrid()

	var engine bytes.Buffer
	gg := g
	if _, err := (&campaign.Runner{Workers: 1, Sink: campaign.NewJSONLSink(&engine)}).Run(&gg); err != nil {
		t.Fatal(err)
	}

	var public bytes.Buffer
	run, err := dfrs.Campaign(context.Background(), g, dfrs.CampaignOptions{Workers: 1, Output: &public})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Wait(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(engine.Bytes(), public.Bytes()) {
		t.Fatalf("public campaign JSONL differs from engine output:\nengine:\n%s\npublic:\n%s",
			engine.String(), public.String())
	}
	if engine.Len() == 0 {
		t.Fatal("no JSONL produced")
	}
}

// TestCampaignStreamsAllRecords checks the streaming channel delivers
// every record and Wait returns the same set sorted by key.
func TestCampaignStreamsAllRecords(t *testing.T) {
	g := apiGrid()
	run, err := dfrs.Campaign(context.Background(), g, dfrs.CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	streamed := map[string]dfrs.CampaignRecord{}
	for rec := range run.Records() {
		streamed[rec.Key] = rec
	}
	recs, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if run.Total() != len(g.Cells()) || len(recs) != run.Total() {
		t.Fatalf("ran %d of %d cells (grid has %d)", len(recs), run.Total(), len(g.Cells()))
	}
	if len(streamed) != len(recs) {
		t.Fatalf("streamed %d records, Wait returned %d", len(streamed), len(recs))
	}
	for i, rec := range recs {
		if i > 0 && recs[i-1].Key >= rec.Key {
			t.Fatalf("Wait records not sorted by key at %d", i)
		}
		if !reflect.DeepEqual(streamed[rec.Key], rec) {
			t.Errorf("streamed record %s differs from Wait record", rec.Key)
		}
	}
}

// TestCampaignCancelCheckpointResume is the interruption contract end to
// end: cancel mid-campaign, verify the checkpoint is parseable and the run
// stopped within one cell, then resume and verify exactly the missing
// cells ran and the final file equals an uninterrupted campaign.
func TestCampaignCancelCheckpointResume(t *testing.T) {
	g := apiGrid()
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	run, err := dfrs.Campaign(ctx, g, dfrs.CampaignOptions{
		Workers:    1,
		Checkpoint: path,
		Progress: func(done, total int, rec dfrs.CampaignRecord) {
			if done == 1 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	partial, err := run.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	total := len(g.Cells())
	if len(partial) == 0 || len(partial) >= total {
		t.Fatalf("cancelled campaign ran %d of %d cells; want a strict partial set", len(partial), total)
	}

	// The flushed checkpoint must be valid JSONL holding exactly the
	// completed cells.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := dfrs.ReadCampaignRecords(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpt) != len(partial) {
		t.Fatalf("checkpoint holds %d records, run returned %d", len(ckpt), len(partial))
	}

	// Resume: exactly the missing cells run, nothing is recomputed.
	run2, err := dfrs.Campaign(context.Background(), g, dfrs.CampaignOptions{
		Workers: 1, Checkpoint: path, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rest, err := run2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if run2.Skipped() != len(partial) {
		t.Errorf("resume skipped %d cells, want %d", run2.Skipped(), len(partial))
	}
	if len(partial)+len(rest) != total {
		t.Errorf("resume ran %d cells, want %d", len(rest), total-len(partial))
	}

	// The resumed file must contain the full record set, equal (as sorted
	// records) to an uninterrupted campaign.
	f, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	finalRecs, err := dfrs.ReadCampaignRecords(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	dfrs.SortCampaignRecords(finalRecs)

	clean, err := dfrs.Campaign(context.Background(), g, dfrs.CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cleanRecs, err := clean.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(finalRecs, cleanRecs) {
		t.Fatal("interrupt+resume record set differs from an uninterrupted campaign")
	}
}

// TestCampaignPerCellObserver wires an observer factory through
// CampaignOptions and checks every cell delivers a deterministic event
// stream.
func TestCampaignPerCellObserver(t *testing.T) {
	g := apiGrid()
	counts := map[string]*dfrs.EventRecorder{}
	run, err := dfrs.Campaign(context.Background(), g, dfrs.CampaignOptions{
		Workers: 1,
		Observer: func(c dfrs.CampaignCell) dfrs.Observer {
			rec := &dfrs.EventRecorder{}
			counts[c.Key()] = rec
			return rec
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != len(recs) {
		t.Fatalf("observed %d cells, ran %d", len(counts), len(recs))
	}
	for key, rec := range counts {
		completions := 0
		for _, ev := range rec.Events() {
			if ev.Kind == dfrs.EvCompleted {
				completions++
			}
		}
		if completions != g.JobsPerTrace {
			t.Errorf("cell %s observed %d completions, want %d", key, completions, g.JobsPerTrace)
		}
	}
}

// TestCampaignSkippedCountsOnlyThisGrid resumes against a checkpoint
// holding keys from a larger, foreign grid: Skipped must count only cells
// of the current grid, never exceeding Total.
func TestCampaignSkippedCountsOnlyThisGrid(t *testing.T) {
	big := apiGrid()
	big.Loads = []float64{0.3, 0.5, 0.8} // superset of apiGrid's loads
	path := filepath.Join(t.TempDir(), "foreign.jsonl")
	bigRun, err := dfrs.Campaign(context.Background(), big, dfrs.CampaignOptions{Workers: 2, Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	bigRecs, err := bigRun.Wait()
	if err != nil {
		t.Fatal(err)
	}

	g := apiGrid()
	run, err := dfrs.Campaign(context.Background(), g, dfrs.CampaignOptions{
		Workers: 1, Checkpoint: path, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if run.Skipped() != run.Total() {
		t.Errorf("Skipped() = %d, want %d (every cell of this grid is checkpointed; file holds %d foreign records)",
			run.Skipped(), run.Total(), len(bigRecs))
	}
	if len(recs) != 0 {
		t.Errorf("resume against a superset checkpoint re-ran %d cells", len(recs))
	}
}

// TestCampaignValidatesEagerly checks option and grid errors surface
// before any goroutine launches.
func TestCampaignValidatesEagerly(t *testing.T) {
	if _, err := dfrs.Campaign(context.Background(), dfrs.Grid{}, dfrs.CampaignOptions{}); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := dfrs.Campaign(context.Background(), apiGrid(), dfrs.CampaignOptions{Resume: true}); err == nil {
		t.Error("Resume without Checkpoint accepted")
	}
}
