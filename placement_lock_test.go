package dfrs_test

// Default-objective lock: the paper's hard-coded node-selection rules and
// the placement-objective layer must coincide. For every scheduler family,
// running with no objective (the inlined pre-refactor selection paths)
// and running with that family's default rule spelled as an explicit
// objective ("loadbalance" for the greedy/DYNMCB8 families, "first" for
// batch and gang) must produce identical simulations — same node choices,
// same event sequences, same metrics — over 200+ random instances spanning
// homogeneous, heterogeneous and GPU platforms. This is the frozen-copy
// comparison of pre/post-refactor node choices at the whole-simulation
// level: the nil paths are the pre-refactor code, kept verbatim.

import (
	"context"
	"reflect"
	"testing"

	dfrs "repro"
)

// defaultObjectiveOf maps each scheduler family to the registered
// objective that spells out its published selection rule.
func defaultObjectiveOf(alg string) string {
	switch alg {
	case "fcfs", "easy", "conservative", "gang":
		return "first"
	}
	// greedy family and DYNMCB8 family (greedy placement + index bin
	// order, which every uniform-score objective preserves).
	return "loadbalance"
}

func normalizeEvents(evs []dfrs.Event) []dfrs.Event {
	out := append([]dfrs.Event(nil), evs...)
	for i := range out {
		out[i].Elapsed = 0 // wall-clock timing is nondeterministic
	}
	return out
}

func TestDefaultObjectiveLock(t *testing.T) {
	if testing.Short() {
		t.Skip("lock battery is slow")
	}
	algorithms := []string{
		"greedy", "greedy-pmtn", "greedy-pmtn-migr",
		"dynmcb8", "dynmcb8-per", "dynmcb8-asap-per", "dynmcb8-stretch-per",
		"fcfs", "easy", "conservative", "gang",
	}
	mixes := []string{"", "bimodal", "powerlaw", "gpu-uniform", "bimodal-priced"}
	loads := []float64{0.3, 0.6, 0.9}
	instances := 0
	for seed := uint64(1); seed <= 10; seed++ {
		for li, alg := range algorithms {
			mix := mixes[(int(seed)+li)%len(mixes)]
			load := loads[(int(seed)+li)%len(loads)]
			gpuFrac := 0.0
			if mix == "gpu-uniform" {
				gpuFrac = 0.3
			}
			tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{
				Seed: seed, Nodes: 16, Jobs: 25, GPUFrac: gpuFrac,
			})
			if err != nil {
				t.Fatal(err)
			}
			tr, err = tr.ScaleToLoad(load)
			if err != nil {
				t.Fatal(err)
			}
			run := func(objective string) (dfrs.Result, []dfrs.Event) {
				rec := &dfrs.EventRecorder{}
				opts := []dfrs.RunOption{
					dfrs.WithPenalty(300),
					dfrs.WithNodeMix(mix),
					dfrs.WithObserver(rec),
					dfrs.WithInvariantChecking(),
				}
				if objective != "" {
					opts = append(opts, dfrs.WithObjective(objective))
				}
				res, err := dfrs.Run(context.Background(), tr, alg, opts...)
				if err != nil {
					t.Fatalf("seed %d alg %s mix %q obj %q: %v", seed, alg, mix, objective, err)
				}
				return res, normalizeEvents(rec.Events())
			}
			defRes, defEvents := run("")
			objRes, objEvents := run(defaultObjectiveOf(alg))
			if !reflect.DeepEqual(defEvents, objEvents) {
				t.Fatalf("seed %d alg %s mix %q: event sequences differ between the default path and objective %q",
					seed, alg, mix, defaultObjectiveOf(alg))
			}
			if !reflect.DeepEqual(defRes.Jobs(), objRes.Jobs()) {
				t.Fatalf("seed %d alg %s mix %q: per-job outcomes differ", seed, alg, mix)
			}
			if defRes.Makespan() != objRes.Makespan() || defRes.MaxStretch() != objRes.MaxStretch() ||
				defRes.Events() != objRes.Events() || defRes.Cost() != objRes.Cost() {
				t.Fatalf("seed %d alg %s mix %q: metrics differ", seed, alg, mix)
			}
			instances += 2
		}
	}
	if instances < 200 {
		t.Fatalf("battery ran only %d simulations", instances)
	}
}

// TestObjectiveChangesPlacement guards against the opposite failure: a
// non-default objective must actually reach the selection layer. On the
// priced bimodal mix the cost objective must move occupancy off the
// expensive fat nodes for at least one family.
func TestObjectiveChangesPlacement(t *testing.T) {
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 11, Nodes: 16, Jobs: 30})
	if err != nil {
		t.Fatal(err)
	}
	tr, err = tr.ScaleToLoad(0.5)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for _, alg := range []string{"greedy-pmtn", "easy", "dynmcb8-per", "gang"} {
		base, err := dfrs.Run(context.Background(), tr, alg, dfrs.WithNodeMix("bimodal-priced"))
		if err != nil {
			t.Fatal(err)
		}
		cost, err := dfrs.Run(context.Background(), tr, alg, dfrs.WithNodeMix("bimodal-priced"),
			dfrs.WithObjective("cost"))
		if err != nil {
			t.Fatal(err)
		}
		if base.Cost() <= 0 || cost.Cost() <= 0 {
			t.Fatalf("%s: cost accounting missing on a priced mix (base %g, cost %g)", alg, base.Cost(), cost.Cost())
		}
		if cost.Cost() < base.Cost() {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("cost objective never reduced cost-weighted occupancy on the priced mix")
	}
}
