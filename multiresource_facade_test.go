package dfrs_test

// Facade-level coverage of the N-dimensional resource model: synthetic
// GPU workloads, WithResources, and the auto-extension of two-dimensional
// clusters for GPU-demanding traces.

import (
	"context"
	"errors"
	"strings"
	"testing"

	dfrs "repro"
)

// TestRunGPUWorkloadEndToEnd: a GPU-decorated synthetic trace completes
// under a DFRS scheduler on a three-resource cluster with per-event
// invariant checking, through the public API alone.
func TestRunGPUWorkloadEndToEnd(t *testing.T) {
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 9, Nodes: 16, Jobs: 40, GPUFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	gpuJobs := 0
	for _, j := range tr.Jobs() {
		if len(j.Extra) > 0 {
			gpuJobs++
		}
	}
	if gpuJobs == 0 {
		t.Fatal("GPUFrac produced no GPU jobs")
	}
	res, err := dfrs.Run(context.Background(), tr, "dynmcb8-asap-per",
		dfrs.WithResources("cpu", "mem", "gpu"),
		dfrs.WithPenalty(300),
		dfrs.WithInvariantChecking())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Jobs()); got != 40 {
		t.Errorf("finished %d of 40 jobs", got)
	}
	// The same trace also runs without WithResources: the facade extends
	// the homogeneous platform with a unit GPU dimension automatically.
	res2, err := dfrs.Run(context.Background(), tr, "greedy-pmtn", dfrs.WithInvariantChecking())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res2.Jobs()); got != 40 {
		t.Errorf("auto-extended run finished %d of 40 jobs", got)
	}
}

// TestWithResourcesValidation: the dimension list must start with the
// paper's pair.
func TestWithResourcesValidation(t *testing.T) {
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 1, Nodes: 8, Jobs: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]string{{"gpu"}, {"mem", "cpu"}, {"cpu", "gpu", "mem"}} {
		_, err := dfrs.Run(context.Background(), tr, "fcfs", dfrs.WithResources(bad...))
		if err == nil || !strings.Contains(err.Error(), "cpu") {
			t.Errorf("WithResources(%v) = %v, want a cpu/mem ordering error", bad, err)
		}
	}
	// A valid list is accepted and inert for a two-resource workload.
	if _, err := dfrs.Run(context.Background(), tr, "fcfs", dfrs.WithResources("cpu", "mem", "gpu")); err != nil {
		t.Errorf("valid resource list rejected: %v", err)
	}
	// The list must agree with a three-dimensional profile's own
	// dimensions: conflicting names or a shorter list fail instead of
	// silently dropping the request.
	if _, err := dfrs.Run(context.Background(), tr, "greedy",
		dfrs.WithNodeMix("gpu-uniform"), dfrs.WithResources("cpu", "mem", "net")); err == nil {
		t.Error("conflicting dimension name accepted against gpu-uniform")
	}
	if _, err := dfrs.Run(context.Background(), tr, "greedy",
		dfrs.WithNodeMix("gpu-uniform"), dfrs.WithResources("cpu", "mem")); err == nil {
		t.Error("shorter resource list accepted against gpu-uniform")
	}
	if _, err := dfrs.Run(context.Background(), tr, "greedy",
		dfrs.WithNodeMix("gpu-uniform"), dfrs.WithResources("cpu", "mem", "gpu")); err != nil {
		t.Errorf("matching resource list rejected against gpu-uniform: %v", err)
	}
	// An explicit two-resource declaration is honoured: a GPU-demanding
	// trace is rejected instead of being granted phantom GPU capacity.
	gpuTr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 1, Nodes: 8, Jobs: 10, GPUFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var ue *dfrs.UnschedulableError
	if _, err := dfrs.Run(context.Background(), gpuTr, "greedy",
		dfrs.WithResources("cpu", "mem")); !errors.As(err, &ue) || ue.Resource != "gpu" {
		t.Errorf("gpu trace on an explicit 2-resource platform: err = %v, want UnschedulableError on gpu", err)
	}
}

// TestGPUDeterminismThroughFacade: the same options give byte-identical
// job outcomes across runs.
func TestGPUDeterminismThroughFacade(t *testing.T) {
	run := func() []dfrs.JobResult {
		tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 4, Nodes: 16, Jobs: 30, GPUFrac: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		res, err := dfrs.Run(context.Background(), tr, "dynmcb8", dfrs.WithNodeMix("gpu-uniform"))
		if err != nil {
			t.Fatal(err)
		}
		return res.Jobs()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("job counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Finish != b[i].Finish || a[i].Start != b[i].Start {
			t.Fatalf("job %d outcomes differ between identical runs", a[i].Job.ID)
		}
	}
}
