package dfrs_test

// Facade tests for the placement-objective layer: WithObjective selects a
// built-in, RegisterObjective round-trips an out-of-tree objective through
// Run (mirroring the RegisterAlgorithm contract), and LoadNodeMix wires a
// priced inventory into the node-mix registry.

import (
	"context"
	"strings"
	"testing"

	dfrs "repro"
)

// mostExpensive is a deliberately pathological out-of-tree objective: it
// prefers the costliest node, the mirror image of the built-in cost rule.
type mostExpensive struct{}

func (mostExpensive) Name() string { return "most-expensive" }
func (mostExpensive) Score(_ dfrs.PlacementDemand, node int, st dfrs.PlacementState) float64 {
	return -st.Cost(node)
}

func TestRegisterObjectiveRoundTrip(t *testing.T) {
	if err := dfrs.RegisterObjective("most-expensive", func() dfrs.Objective { return mostExpensive{} }); err != nil {
		t.Fatal(err)
	}
	if !dfrs.KnownObjective("most-expensive") {
		t.Fatal("registered objective unknown")
	}
	found := false
	for _, name := range dfrs.Objectives() {
		if name == "most-expensive" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Objectives() = %v lacks the registered objective", dfrs.Objectives())
	}
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 21, Nodes: 8, Jobs: 15})
	if err != nil {
		t.Fatal(err)
	}
	worst, err := dfrs.Run(context.Background(), tr, "greedy-pmtn",
		dfrs.WithNodeMix("bimodal-priced"), dfrs.WithObjective("most-expensive"))
	if err != nil {
		t.Fatal(err)
	}
	best, err := dfrs.Run(context.Background(), tr, "greedy-pmtn",
		dfrs.WithNodeMix("bimodal-priced"), dfrs.WithObjective("cost"))
	if err != nil {
		t.Fatal(err)
	}
	if !(worst.Cost() > best.Cost()) {
		t.Fatalf("most-expensive objective cost %g not above cost objective %g", worst.Cost(), best.Cost())
	}
	// Registry error paths mirror RegisterAlgorithm.
	if err := dfrs.RegisterObjective("most-expensive", func() dfrs.Objective { return mostExpensive{} }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := dfrs.RegisterObjective("nil-ctor", nil); err == nil {
		t.Fatal("nil constructor accepted")
	}
	if _, err := dfrs.Run(context.Background(), tr, "greedy", dfrs.WithObjective("bogus")); err == nil {
		t.Fatal("unknown objective accepted by Run")
	}
}

func TestLoadNodeMixPricedInventory(t *testing.T) {
	inv := "# dims: cpu mem\n2 2 cost=4\n1 1 cost=1\n1 1 cost=1\n"
	n, err := dfrs.LoadNodeMix("test-priced-inventory", strings.NewReader(inv))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("inventory size %d, want 3", n)
	}
	if !dfrs.ValidNodeMix("test-priced-inventory") {
		t.Fatal("loaded inventory is not a valid node mix")
	}
	tr, err := dfrs.SyntheticTrace(dfrs.SyntheticOptions{Seed: 4, Nodes: 9, Jobs: 12})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dfrs.Run(context.Background(), tr, "easy",
		dfrs.WithNodeMix("test-priced-inventory"), dfrs.WithObjective("cost"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost() <= 0 {
		t.Fatal("priced inventory produced no cost accounting")
	}
	if res.Costs().NodeCost != res.Cost() {
		t.Fatal("CostSummary.NodeCost disagrees with Result.Cost")
	}
	// Parse errors carry line numbers through the facade.
	if _, err := dfrs.LoadNodeMix("x-bad", strings.NewReader("1 1\noops\n")); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Fatalf("parse error lacks line number: %v", err)
	}
	if _, _, err := dfrs.ParseNodeSpecs(strings.NewReader("")); err == nil {
		t.Fatal("empty inventory accepted")
	}
}
